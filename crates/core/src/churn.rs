//! Peer volatility: deterministic failure injection, live checkpointing and
//! recovery coordination.
//!
//! The paper targets desktop grids, where peers join and leave while an
//! application runs, and argues that *asynchronous* iterative schemes
//! tolerate this volatility where synchronous ones cannot. This module is
//! the subsystem that lets the reproduction run that experiment on every
//! runtime backend:
//!
//! * [`ChurnPlan`] — a seeded, serializable schedule of peer events (crash
//!   at relaxation `X`, slow down by a factor), expressed against each
//!   peer's own relaxation count so the *same* plan is meaningful on the
//!   virtual-time, event-count and wall-clock substrates alike.
//! * [`FaultInjector`] — the runtime consumer of a plan: each peer's engine
//!   asks it after every completed relaxation whether that relaxation was
//!   the peer's last.
//! * [`VolatilityState`] — the per-run shared coordinator: it owns the
//!   [`FaultManager`] checkpoint store the engines deposit into, decides
//!   recovery (spare peer if one is left, otherwise the strongest survivor
//!   by *live* [`crate::load_balance`] throughput estimates), computes the
//!   synchronous rollback target, and accumulates the recovery counters
//!   reported in [`crate::metrics::RunMeasurement`].
//!
//! # Crash / recovery lifecycle
//!
//! 1. The engine completes relaxation `X` and the injector fires: the sweep's
//!    updates are never published, the peer marks itself crashed and goes
//!    silent. The substrate makes the crash real to the degree it can — the
//!    UDP runtime drops the peer's socket (in-flight datagrams are lost for
//!    real), the thread runtime discards its inbox, the deterministic
//!    runtimes stop driving the peer.
//! 2. Detection: on the wall-clock backends the dead peer stops pinging the
//!    [`crate::topology_manager::TopologyManager`] and is evicted after
//!    three missed ping periods
//!    ([`crate::topology_manager::TopologyManager::evictions_since`] feeds
//!    the recovery path); the deterministic backends model the same latency
//!    with the plan's [`ChurnPlan::detection_delay_ns`].
//! 3. Recovery: [`VolatilityState::grant`] consumes
//!    [`FaultManager::on_failure`] — a spare peer adopts the rank, or, with
//!    no spares left, the surviving peer with the highest measured
//!    throughput does. The engine restores its task from the latest
//!    checkpoint and resumes.
//! 4. Scheme semantics: asynchronous and hybrid runs simply absorb the stale
//!    restart (neighbours keep iterating on old boundary data — exactly the
//!    staleness those schemes are built for). A synchronous run cannot: the
//!    recovering peer computes the newest checkpoint iteration *every* rank
//!    has, broadcasts a rollback message, and all peers restart from that
//!    common iteration under a new report generation (stale in-flight
//!    convergence reports are discarded by generation).
//!
//! # Live repartitioning and elastic membership
//!
//! Since PR 5 the re-decomposition is applied for real. When a
//! [`ChurnPlan`] arms `repartition`, a recovery does not restore the
//! original blocks: the coordinator assembles the checkpointed global state
//! ([`crate::workload::assemble_global`]), re-slices it by the live
//! capacity-weighted shares ([`crate::workload::weighted_ranges`] over the
//! same throughput estimates recorded in
//! [`RecoveryRecord::proposed_shares`]) and publishes a [`MembershipPlan`]
//! every engine adopts — synchronous runs under the generation-tagged
//! rollback barrier, asynchronous and hybrid runs at their next safe point,
//! overlaying their live state so only *moved* items carry checkpoint
//! staleness. The same machinery powers *rejoin-as-growth*: a seeded
//! [`ChurnEventKind::Join`] event lets a brand-new peer enter mid-run, take
//! a share of the work through the same re-slice, and count in
//! [`RunMeasurement::joins`] / [`RunMeasurement::repartitions`].
//!
//! # Examples
//!
//! A seeded plan with one crash, one join and live repartitioning:
//!
//! ```
//! use p2pdc::{ChurnPlan, RunConfig, Scheme};
//!
//! let plan = ChurnPlan::kill(1, 20)
//!     .with_checkpoint_interval(5)
//!     .with_repartition(true)
//!     .with_join(0, 30); // a new peer joins once rank 0 completes sweep 30
//! assert_eq!(plan.crash_count(), 1);
//! assert_eq!(plan.join_count(), 1);
//! let config = RunConfig::quick(Scheme::Asynchronous, 2).with_churn(plan);
//! assert!(config.churn.is_some());
//! ```

use crate::fault::{Checkpoint, FaultManager, RecoveryAction};
use crate::load_balance::{LoadBalancer, PeerLoad};
use crate::metrics::RunMeasurement;
use crate::runtime::report_cell::contention;
use crate::workload::{
    assemble_global, balanced_partition, reslice_moved_items, weighted_ranges, Repartitioner,
    ReslicerHandle,
};
use netsim::NodeId;
use p2psap::Scheme;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// What happens to a peer at a scheduled point of a [`ChurnPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnEventKind {
    /// The peer dies: its un-published sweep and in-flight traffic are lost,
    /// and it stays silent until the recovery path revives the rank.
    Crash,
    /// The peer's compute slows down permanently by `factor` (≥ 1.0). On the
    /// simulated backend this scales the virtual compute cost; the
    /// wall-clock backends run the kernel for real and ignore it.
    Slowdown {
        /// Multiplier applied to the peer's per-sweep compute cost.
        factor: f64,
    },
    /// A *new* peer joins the run (rejoin-as-growth): the event's `rank` is
    /// the existing peer whose relaxation clock triggers the join (the
    /// joiner does not exist yet, so it cannot trigger itself); the new peer
    /// takes the next free rank and receives a share of the work through a
    /// live repartition. Requires the workload to support repartitioning
    /// ([`crate::workload::Workload::repartitioner`]); ignored otherwise.
    Join,
    /// The network splits in two: ranks whose bit is set in `group` on one
    /// side, everyone else on the other. Traffic crossing the cut is blocked
    /// (the sim fabric drops it, loopback holds it) until the heal, which is
    /// scheduled on the backend's own clock — `heal_after_ns` virtual
    /// nanoseconds on sim, `heal_after_events` engine events on loopback —
    /// because a partitioned synchronous rank stops relaxing, so the heal
    /// cannot key off relaxation counts. Deterministic backends only; the
    /// wall-clock backends ignore link faults.
    Partition {
        /// Rank bitmask of one partition side (bit `r` = rank `r`).
        group: u64,
        /// Virtual nanoseconds until the cut heals (sim backend).
        heal_after_ns: u64,
        /// Engine events until the cut heals (loopback backend).
        heal_after_events: u64,
    },
    /// The single edge between the event's rank and `peer` flaps: `cycles`
    /// down-then-up periods, each half lasting `period_ns` of virtual time
    /// (sim) / `period_events` engine events (loopback).
    FlappingLink {
        /// The other endpoint of the flapping edge.
        peer: usize,
        /// Half-period in virtual nanoseconds (sim backend).
        period_ns: u64,
        /// Half-period in engine events (loopback backend).
        period_events: u64,
        /// Number of down-then-up cycles before the edge stays up.
        cycles: u32,
    },
    /// Traffic *from* the event's rank *towards* `peer` is slowed by
    /// `factor` (≥ 1.0); the reverse direction is unaffected.
    AsymmetricLatency {
        /// Destination rank of the slowed direction.
        peer: usize,
        /// Latency multiplier on the slowed direction.
        factor: f64,
    },
    /// The next `flips` frames the rank sends are corrupted in flight (one
    /// seeded byte flip each). The framing checksums must reject the frames
    /// — corrupted traffic is effectively lost, never consumed as data.
    Corruption {
        /// Number of outgoing frames to corrupt.
        flips: u32,
    },
}

impl ChurnEventKind {
    /// Whether this kind models the *link* rather than the peer itself
    /// (consumed by the transport drivers via
    /// [`VolatilityState::take_link_events`], not by the engine).
    pub fn is_link_fault(&self) -> bool {
        matches!(
            self,
            ChurnEventKind::Partition { .. }
                | ChurnEventKind::FlappingLink { .. }
                | ChurnEventKind::AsymmetricLatency { .. }
                | ChurnEventKind::Corruption { .. }
        )
    }
}

/// One scheduled peer event. The trigger is the *victim's own relaxation
/// count* — the only clock all four runtime backends share — so a plan
/// replays identically on the deterministic substrates and meaningfully on
/// the wall-clock ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Rank the event strikes.
    pub rank: usize,
    /// The event fires once the rank completes this many relaxations.
    pub at_iteration: u64,
    /// What happens.
    pub kind: ChurnEventKind,
}

/// A deterministic, seeded schedule of peer volatility, consumable by every
/// runtime backend via [`crate::runtime::RunConfig::churn`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// The scheduled events.
    pub events: Vec<ChurnEvent>,
    /// Engines deposit a checkpoint every this many relaxations (and once at
    /// iteration 0, so a rollback target always exists).
    pub checkpoint_interval: u64,
    /// Failure-detection latency modelled by the simulated backend
    /// (nanoseconds of virtual time). The wall-clock backends detect for
    /// real, through three missed ping periods of the topology manager.
    pub detection_delay_ns: u64,
    /// Failure-detection latency on the loopback backend, whose clock ticks
    /// one unit per engine event rather than per nanosecond.
    pub detection_delay_events: u64,
    /// Spare peers available to adopt a dead rank before the recovery path
    /// falls back to the strongest survivor.
    pub spares: usize,
    /// Apply the capacity-weighted re-decomposition at recovery: instead of
    /// restoring the original blocks, the restarted run re-slices the
    /// checkpointed global state by the live throughput shares. `false` (the
    /// PR 4 behaviour) keeps the original split and records the proposal in
    /// [`RecoveryRecord::proposed_shares`] only. Join events repartition
    /// regardless of this flag (a joiner cannot take work otherwise).
    pub repartition: bool,
}

impl ChurnPlan {
    /// Default checkpoint interval (relaxations).
    pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 20;

    /// Default modelled detection latency: 30 ms, three periods of a 10 ms
    /// ping — the same rule the wall-clock topology manager applies.
    pub const DEFAULT_DETECTION_DELAY_NS: u64 = 30_000_000;

    /// Default modelled detection latency in loopback engine events (a few
    /// sweeps' worth of downtime for the surviving peers).
    pub const DEFAULT_DETECTION_DELAY_EVENTS: u64 = 64;

    /// A plan with the given events and the default knobs.
    pub fn new(events: Vec<ChurnEvent>) -> Self {
        Self {
            events,
            checkpoint_interval: Self::DEFAULT_CHECKPOINT_INTERVAL,
            detection_delay_ns: Self::DEFAULT_DETECTION_DELAY_NS,
            detection_delay_events: Self::DEFAULT_DETECTION_DELAY_EVENTS,
            spares: 1,
            repartition: false,
        }
    }

    /// The canonical fault-tolerance experiment: kill one peer once it
    /// completes `at_iteration` relaxations.
    pub fn kill(rank: usize, at_iteration: u64) -> Self {
        Self::new(vec![ChurnEvent {
            rank,
            at_iteration,
            kind: ChurnEventKind::Crash,
        }])
    }

    /// A seeded random plan: `crashes` distinct ranks (of `peers`) crash at
    /// iterations drawn from the middle half of `[1, horizon]`. The same
    /// seed always yields the same plan.
    pub fn seeded(seed: u64, peers: usize, crashes: usize, horizon: u64) -> Self {
        assert!(peers >= 1);
        let crashes = crashes.min(peers);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ranks: Vec<usize> = (0..peers).collect();
        // Fisher-Yates over the rank vector, then take the prefix.
        for i in (1..peers).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            ranks.swap(i, j);
        }
        let lo = (horizon / 4).max(1);
        let span = (horizon / 2).max(1);
        let events = ranks
            .into_iter()
            .take(crashes)
            .map(|rank| ChurnEvent {
                rank,
                at_iteration: lo + rng.next_u64() % span,
                kind: ChurnEventKind::Crash,
            })
            .collect();
        Self::new(events)
    }

    /// Replace the checkpoint interval.
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        assert!(interval >= 1, "checkpoint interval must be at least 1");
        self.checkpoint_interval = interval;
        self
    }

    /// Replace the modelled detection latency of the simulated backend.
    pub fn with_detection_delay_ns(mut self, delay_ns: u64) -> Self {
        self.detection_delay_ns = delay_ns;
        self
    }

    /// Replace the modelled detection latency of the loopback backend.
    pub fn with_detection_delay_events(mut self, events: u64) -> Self {
        self.detection_delay_events = events;
        self
    }

    /// Replace the spare-peer pool size.
    pub fn with_spares(mut self, spares: usize) -> Self {
        self.spares = spares;
        self
    }

    /// Arm (or disarm) live repartitioning at recovery.
    pub fn with_repartition(mut self, repartition: bool) -> Self {
        self.repartition = repartition;
        self
    }

    /// Schedule a join: a new peer enters the run once the existing
    /// `trigger_rank` completes `at_iteration` relaxations, and takes a
    /// share of the work through a live repartition.
    pub fn with_join(mut self, trigger_rank: usize, at_iteration: u64) -> Self {
        self.events.push(ChurnEvent {
            rank: trigger_rank,
            at_iteration,
            kind: ChurnEventKind::Join,
        });
        self
    }

    /// Bitmask over `ranks` for [`ChurnEventKind::Partition::group`].
    pub fn rank_mask(ranks: &[usize]) -> u64 {
        ranks.iter().fold(0u64, |mask, &rank| {
            assert!(rank < 64, "partition groups address ranks 0..64");
            mask | (1u64 << rank)
        })
    }

    /// Schedule a network partition: once `trigger_rank` completes
    /// `at_iteration` relaxations, the ranks in `group` split from the rest;
    /// the cut heals after the dual-clock delay.
    pub fn with_partition(
        mut self,
        trigger_rank: usize,
        at_iteration: u64,
        group: &[usize],
        heal_after_ns: u64,
        heal_after_events: u64,
    ) -> Self {
        self.events.push(ChurnEvent {
            rank: trigger_rank,
            at_iteration,
            kind: ChurnEventKind::Partition {
                group: Self::rank_mask(group),
                heal_after_ns,
                heal_after_events,
            },
        });
        self
    }

    /// Schedule a flapping link between `rank` and `peer`.
    pub fn with_flapping_link(
        mut self,
        rank: usize,
        at_iteration: u64,
        peer: usize,
        period_ns: u64,
        period_events: u64,
        cycles: u32,
    ) -> Self {
        self.events.push(ChurnEvent {
            rank,
            at_iteration,
            kind: ChurnEventKind::FlappingLink {
                peer,
                period_ns,
                period_events,
                cycles,
            },
        });
        self
    }

    /// Schedule an asymmetric latency fault: traffic from `rank` towards
    /// `peer` slowed by `factor`.
    pub fn with_asym_latency(
        mut self,
        rank: usize,
        at_iteration: u64,
        peer: usize,
        factor: f64,
    ) -> Self {
        assert!(factor >= 1.0, "latency factors slow a link down");
        self.events.push(ChurnEvent {
            rank,
            at_iteration,
            kind: ChurnEventKind::AsymmetricLatency { peer, factor },
        });
        self
    }

    /// Schedule message corruption: the next `flips` frames `rank` sends
    /// after the trigger are corrupted in flight.
    pub fn with_corruption(mut self, rank: usize, at_iteration: u64, flips: u32) -> Self {
        self.events.push(ChurnEvent {
            rank,
            at_iteration,
            kind: ChurnEventKind::Corruption { flips },
        });
        self
    }

    /// Number of crash events in the plan.
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Crash)
            .count()
    }

    /// Number of join events in the plan.
    pub fn join_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Join)
            .count()
    }

    /// Number of link-fault events (partitions, flaps, asymmetric latency,
    /// corruption) in the plan.
    pub fn link_fault_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind.is_link_fault())
            .count()
    }
}

/// Runtime consumer of a [`ChurnPlan`]: tracks which events have fired.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Pending events per rank, sorted by trigger iteration descending so
    /// the next one to fire sits at the back.
    pending: HashMap<usize, Vec<ChurnEvent>>,
    /// Accumulated slowdown factor per rank (product of fired events).
    slowdown: HashMap<usize, f64>,
}

impl FaultInjector {
    /// Arm the injector with a plan.
    pub fn new(plan: &ChurnPlan) -> Self {
        let mut pending: HashMap<usize, Vec<ChurnEvent>> = HashMap::new();
        for event in &plan.events {
            pending.entry(event.rank).or_default().push(*event);
        }
        for events in pending.values_mut() {
            events.sort_by_key(|e| std::cmp::Reverse(e.at_iteration));
        }
        Self {
            pending,
            slowdown: HashMap::new(),
        }
    }

    /// Remove and return the first *due* event of `rank` matching `matches`.
    /// Due events (`at_iteration <= iteration`) sit contiguously at the back
    /// of the descending-sorted queue; scanning the whole due suffix instead
    /// of only the very last slot keeps co-due events of different kinds
    /// from jamming each other (e.g. a due partition must not hide a due
    /// crash from [`FaultInjector::should_crash`]).
    fn pop_due(
        &mut self,
        rank: usize,
        iteration: u64,
        matches: impl Fn(&ChurnEventKind) -> bool,
    ) -> Option<ChurnEvent> {
        let events = self.pending.get_mut(&rank)?;
        let mut at = events.len();
        while at > 0 && events[at - 1].at_iteration <= iteration {
            if matches(&events[at - 1].kind) {
                return Some(events.remove(at - 1));
            }
            at -= 1;
        }
        None
    }

    /// `rank` just completed relaxation `iteration`: does it crash now? The
    /// trigger is `at_iteration <= iteration`, so a crash scheduled inside a
    /// checkpoint interval cannot be skipped over. Consumes the event.
    pub fn should_crash(&mut self, rank: usize, iteration: u64) -> bool {
        self.pop_due(rank, iteration, |k| *k == ChurnEventKind::Crash)
            .is_some()
    }

    /// `rank` just completed relaxation `iteration`: does its clock trigger
    /// a scheduled join now? Consumes the event.
    pub fn join_due(&mut self, rank: usize, iteration: u64) -> bool {
        self.pop_due(rank, iteration, |k| *k == ChurnEventKind::Join)
            .is_some()
    }

    /// The compute-slowdown factor of `rank` as of relaxation `iteration`
    /// (1.0 = full speed). Fired slowdown events accumulate multiplicatively
    /// and persist.
    pub fn slowdown_factor(&mut self, rank: usize, iteration: u64) -> f64 {
        while let Some(event) = self.pop_due(rank, iteration, |k| {
            matches!(k, ChurnEventKind::Slowdown { .. })
        }) {
            if let ChurnEventKind::Slowdown { factor } = event.kind {
                *self.slowdown.entry(rank).or_insert(1.0) *= factor;
            }
        }
        self.slowdown.get(&rank).copied().unwrap_or(1.0)
    }

    /// Drain every due link-fault event of `rank` (partition, flap,
    /// asymmetric latency, corruption), in schedule order. The transport
    /// drivers consume these — the engine never sees link faults.
    pub fn take_link_events(&mut self, rank: usize, iteration: u64) -> Vec<ChurnEvent> {
        let mut out = Vec::new();
        while let Some(event) = self.pop_due(rank, iteration, ChurnEventKind::is_link_fault) {
            out.push(event);
        }
        out
    }

    /// The next iteration at which any pending event of `rank` fires
    /// (`u64::MAX` when none are left). Mirrors into the `VolatilityFast`
    /// per-rank atomics after every consuming query, so the per-sweep
    /// due-ness checks are plain atomic loads.
    pub fn next_event_at(&self, rank: usize) -> u64 {
        self.pending
            .get(&rank)
            .and_then(|events| events.last())
            .map(|e| e.at_iteration)
            .unwrap_or(u64::MAX)
    }

    /// Highest rank any pending event targets (for sizing the fast mirror).
    fn max_event_rank(&self) -> Option<usize> {
        self.pending
            .iter()
            .filter(|(_, events)| !events.is_empty())
            .map(|(&rank, _)| rank)
            .max()
    }
}

/// Read-mostly mirror of the volatility facts every sweep consults, kept
/// beside the [`VolatilityState`] mutex so the common sweep (no event due,
/// no checkpoint boundary, no new plan) never takes it. All mirrors are
/// conservative gates: a stale value can only send a sweep to the locked
/// path (where the injector's own state decides), never skip a due event —
/// each mirror is rewritten under the mutex immediately after the state it
/// reflects changes.
#[derive(Debug)]
pub struct VolatilityFast {
    /// Fixed for the run (`ChurnPlan::checkpoint_interval`, clamped to 1).
    checkpoint_interval: u64,
    /// Per-rank next pending event iteration (`u64::MAX` = none left).
    next_event_at: Box<[AtomicU64]>,
    /// Per-rank accumulated slowdown factor (f64 bits; persists after the
    /// events fire, so it must be cached — an event gate alone would report
    /// full speed once the schedule drains).
    slowdown_bits: Box<[AtomicU64]>,
    /// Epoch of the latest published membership plan (0 = none).
    plan_epoch: AtomicU32,
}

impl VolatilityFast {
    fn new(checkpoint_interval: u64, injector: &FaultInjector, peers: usize) -> Self {
        let ranks = injector
            .max_event_rank()
            .map(|r| r + 1)
            .unwrap_or(0)
            .max(peers);
        let next_event_at = (0..ranks)
            .map(|rank| AtomicU64::new(injector.next_event_at(rank)))
            .collect();
        let slowdown_bits = (0..ranks)
            .map(|_| AtomicU64::new(1.0_f64.to_bits()))
            .collect();
        Self {
            checkpoint_interval,
            next_event_at,
            slowdown_bits,
            plan_epoch: AtomicU32::new(0),
        }
    }

    /// Next pending event iteration of `rank`. Ranks beyond the provisioned
    /// mirror (joiners without scheduled events) never have one.
    fn next_event_at(&self, rank: usize) -> u64 {
        self.next_event_at
            .get(rank)
            .map(|at| at.load(Ordering::Acquire))
            .unwrap_or(u64::MAX)
    }

    fn set_next_event(&self, rank: usize, at_iteration: u64) {
        if let Some(slot) = self.next_event_at.get(rank) {
            slot.store(at_iteration, Ordering::Release);
        }
    }

    fn slowdown(&self, rank: usize) -> f64 {
        self.slowdown_bits
            .get(rank)
            .map(|bits| f64::from_bits(bits.load(Ordering::Acquire)))
            .unwrap_or(1.0)
    }

    fn set_slowdown(&self, rank: usize, factor: f64) {
        if let Some(slot) = self.slowdown_bits.get(rank) {
            slot.store(factor.to_bits(), Ordering::Release);
        }
    }

    fn plan_epoch(&self) -> u32 {
        self.plan_epoch.load(Ordering::Acquire)
    }
}

/// The sharing wrapper around a [`VolatilityState`]: lock-free per-sweep
/// gates over the [`VolatilityFast`] mirror in front of the mutex-protected
/// coordinator. See the gate methods for the exactness argument.
#[derive(Debug)]
pub struct VolatilityHandle {
    fast: Arc<VolatilityFast>,
    inner: Mutex<VolatilityState>,
}

impl VolatilityHandle {
    /// Lock the coordinator (control-path operations: recovery, plans,
    /// checkpoint deposits, driver polls).
    pub fn lock(&self) -> MutexGuard<'_, VolatilityState> {
        contention::count_volatility_lock();
        self.inner.lock().unwrap()
    }

    /// Lock the coordinator from a per-sweep path that passed a due-ness
    /// gate. Identical to [`VolatilityHandle::lock`] but counted separately,
    /// so the contention instrumentation can prove the common sweep takes
    /// zero of these.
    pub fn lock_sweep(&self) -> MutexGuard<'_, VolatilityState> {
        contention::count_volatility_sweep_lock();
        self.inner.lock().unwrap()
    }

    /// Whether any scheduled event of `rank` is due at `iteration` — exact,
    /// because an event is due iff `at_iteration <= iteration`, and the
    /// mirror always holds the minimum pending `at_iteration`.
    pub fn event_due(&self, rank: usize, iteration: u64) -> bool {
        iteration >= self.fast.next_event_at(rank)
    }

    /// Whether the post-sweep volatility work (periodic checkpoint deposit,
    /// crash injection) requires the mutex this iteration.
    pub fn sweep_event_due(&self, rank: usize, iteration: u64) -> bool {
        iteration.is_multiple_of(self.fast.checkpoint_interval) || self.event_due(rank, iteration)
    }

    /// Whether a membership plan newer than `epoch` has been published
    /// (lock-free mirror of the [`VolatilityState::adoption`] precondition).
    pub fn plan_newer_than(&self, epoch: u32) -> bool {
        self.fast.plan_epoch() > epoch
    }

    /// The rank's current compute-slowdown factor: answered from the atomic
    /// cache unless an event is due (the locked query then pops it and
    /// refreshes the cache).
    pub fn slowdown_factor(&self, rank: usize, iteration: u64) -> f64 {
        if self.event_due(rank, iteration) {
            self.lock_sweep().slowdown_factor(rank, iteration)
        } else {
            self.fast.slowdown(rank)
        }
    }
}

/// One completed recovery, for observability (surfaced by the churn bench).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// The rank that died and was revived.
    pub rank: usize,
    /// The peer that adopted the rank (a spare, or the strongest survivor).
    pub replacement: NodeId,
    /// Checkpoint iteration the rank restarted from.
    pub from_iteration: u64,
    /// The common iteration a synchronous run rolled back to (`None` for
    /// asynchronous/hybrid recoveries, which absorb the stale restart).
    pub rollback_to: Option<u64>,
    /// The capacity-weighted block shares the load balancer proposes from
    /// the live throughput estimates (advisory; see the module docs).
    pub proposed_shares: Vec<usize>,
}

/// Notional block count the advisory weighted re-decomposition is expressed
/// over (shares out of 100).
const REBALANCE_SHARE_UNITS: usize = 100;

/// One published re-decomposition of the run: the new contiguous partition,
/// the assembled global state it was sliced from, and how engines adopt it.
/// Synchronous plans carry a `rollback` — every peer realigns on the common
/// iteration under the new generation; asynchronous/hybrid plans are
/// adopted at each engine's next safe point (the engine overlays its live
/// state so only moved items carry checkpoint staleness).
#[derive(Debug, Clone)]
pub struct MembershipPlan {
    /// Monotone membership epoch (engines track the epoch they run under).
    pub epoch: u32,
    /// New absolute `(start, len)` item ranges, one per rank.
    pub parts: Vec<(usize, usize)>,
    /// Global value vector the new slices (and their ghost seeds) come from.
    pub global: Vec<f64>,
    /// Iteration the assembled state corresponds to (the restored counter
    /// for ranks without live state: the joiner, a recovering rank, or
    /// every rank under a rollback).
    pub iteration: u64,
    /// Synchronous realignment: `(rollback iteration, new generation)`.
    pub rollback: Option<(u64, u32)>,
    /// The rank that joined with this plan, if it grew the run.
    pub joined_rank: Option<usize>,
}

/// Everything an engine needs to adopt the current [`MembershipPlan`],
/// cloned out of the coordinator under one lock.
pub struct AdoptionTicket {
    /// The plan's membership epoch.
    pub epoch: u32,
    /// New absolute `(start, len)` item ranges, one per rank.
    pub parts: Vec<(usize, usize)>,
    /// Global value vector to slice the new task from.
    pub global: Vec<f64>,
    /// Restored relaxation counter for ranks without live state.
    pub iteration: u64,
    /// The plan's synchronous realignment, mirrored from
    /// [`MembershipPlan::rollback`] (callers on the rollback path verify it
    /// matches the rollback they are applying).
    pub rollback: Option<(u64, u32)>,
    /// The workload's repartitioner (task factory for explicit partitions).
    pub repartitioner: Arc<dyn Repartitioner>,
}

/// Per-run shared coordinator of the volatility subsystem. One per run, like
/// the [`crate::runtime::engine::ConvergenceDetector`]; engines and drivers
/// reach it through [`SharedVolatility`].
#[derive(Debug)]
pub struct VolatilityState {
    scheme: Scheme,
    peers: usize,
    checkpoint_interval: u64,
    detection_delay_ns: u64,
    detection_delay_events: u64,
    injector: FaultInjector,
    fault: FaultManager,
    /// Rollback generation; bumped on every synchronous recovery.
    generation: u32,
    crashes: u64,
    recoveries: u64,
    rollbacks: u64,
    downtime_ns: u64,
    /// Clock value at each un-recovered crash.
    crash_time_ns: HashMap<usize, u64>,
    /// Recovery decisions taken but not yet consumed by the reviving engine.
    granted: HashMap<usize, RecoveryAction>,
    /// Completed recoveries, in order.
    recovery_log: Vec<RecoveryRecord>,
    /// Apply the capacity-weighted re-decomposition at recovery.
    repartition_on_recovery: bool,
    /// The workload's repartitioner, when the workload supports re-slicing.
    repartitioner: Option<ReslicerHandle>,
    /// Last known value of every item, updated from each checkpoint deposit.
    /// The re-slice assembly starts from this, so items whose *current*
    /// owner has no checkpoint yet (a rank re-assigned while its old owner
    /// was down) still carry the newest value any rank ever recorded for
    /// them instead of falling back to the initial iterate.
    canvas: Option<Vec<f64>>,
    /// Current contiguous partition (absolute `(start, len)` per rank).
    parts: Vec<(usize, usize)>,
    /// Membership epoch; bumped by every published plan.
    epoch: u32,
    /// The latest published plan (engines on older epochs adopt it).
    plan: Option<MembershipPlan>,
    /// A joined rank whose substrate peer has not been spawned yet.
    pending_spawn: Option<usize>,
    joins: u64,
    repartitions: u64,
    moved_points: u64,
    /// Read-mostly mirror the per-sweep gates load (see [`VolatilityFast`]).
    fast: Arc<VolatilityFast>,
}

/// A [`VolatilityState`] shared between the peers and driver of one run.
pub type SharedVolatility = Arc<VolatilityHandle>;

impl VolatilityState {
    /// Create the coordinator for a run of `peers` peers under `plan`.
    pub fn new(plan: &ChurnPlan, peers: usize, scheme: Scheme) -> Self {
        let checkpoint_interval = plan.checkpoint_interval.max(1);
        let injector = FaultInjector::new(plan);
        let fast = Arc::new(VolatilityFast::new(checkpoint_interval, &injector, peers));
        Self {
            scheme,
            peers,
            checkpoint_interval,
            detection_delay_ns: plan.detection_delay_ns,
            detection_delay_events: plan.detection_delay_events,
            injector,
            fault: FaultManager::new((0..plan.spares).map(|i| NodeId(peers + i)).collect()),
            generation: 0,
            crashes: 0,
            recoveries: 0,
            rollbacks: 0,
            downtime_ns: 0,
            crash_time_ns: HashMap::new(),
            granted: HashMap::new(),
            recovery_log: Vec::new(),
            repartition_on_recovery: plan.repartition,
            repartitioner: None,
            canvas: None,
            parts: Vec::new(),
            epoch: 0,
            plan: None,
            pending_spawn: None,
            joins: 0,
            repartitions: 0,
            moved_points: 0,
            fast,
        }
    }

    /// Create a shared coordinator handle.
    pub fn shared(plan: &ChurnPlan, peers: usize, scheme: Scheme) -> SharedVolatility {
        let state = Self::new(plan, peers, scheme);
        Arc::new(VolatilityHandle {
            fast: Arc::clone(&state.fast),
            inner: Mutex::new(state),
        })
    }

    /// Relaxations between checkpoints.
    pub fn checkpoint_interval(&self) -> u64 {
        self.checkpoint_interval
    }

    /// Modelled failure-detection latency of the simulated backend.
    pub fn detection_delay_ns(&self) -> u64 {
        self.detection_delay_ns
    }

    /// Modelled failure-detection latency of the loopback backend (events).
    pub fn detection_delay_events(&self) -> u64 {
        self.detection_delay_events
    }

    /// Deposit a checkpoint into the store (and fold its values into the
    /// live last-known-value canvas the re-slice assembly starts from).
    pub fn store_checkpoint(&mut self, checkpoint: Checkpoint) {
        if let (Some(canvas), Some(rep)) = (self.canvas.as_mut(), self.repartitioner.as_ref()) {
            crate::workload::write_block_state(canvas, &checkpoint.state, rep.0.item_width());
        }
        self.fault.store_checkpoint(checkpoint);
    }

    /// Attach the workload's repartitioner (the drivers wire this from
    /// [`crate::runtime::RunConfig::repartitioner`]). Initialises the
    /// tracked partition to the balanced split every workload starts from.
    pub fn set_repartitioner(&mut self, handle: ReslicerHandle) {
        if handle.0.items() >= self.peers {
            let (items, base) = (handle.0.items(), handle.0.item_base());
            self.parts = (0..self.peers)
                .map(|k| {
                    let (offset, len) = balanced_partition(items, self.peers, k);
                    (base + offset, len)
                })
                .collect();
            self.canvas = Some(handle.0.global_canvas());
            self.repartitioner = Some(handle);
        }
    }

    /// Current membership epoch (bumped by every published plan).
    pub fn current_epoch(&self) -> u32 {
        self.epoch
    }

    /// Current number of ranks in the run (grows on joins).
    pub fn peers(&self) -> usize {
        self.peers
    }

    /// The latest published membership plan.
    pub fn plan(&self) -> Option<&MembershipPlan> {
        self.plan.as_ref()
    }

    /// Clone everything an engine needs to adopt the current plan, provided
    /// the plan is newer than the engine's `epoch` and matches the engine's
    /// adoption path (`via_rollback`: synchronous realignment vs free
    /// adoption).
    pub fn adoption(&self, epoch: u32, via_rollback: bool) -> Option<AdoptionTicket> {
        let plan = self.plan.as_ref()?;
        if plan.epoch <= epoch || plan.rollback.is_some() != via_rollback {
            return None;
        }
        Some(AdoptionTicket {
            epoch: plan.epoch,
            parts: plan.parts.clone(),
            global: plan.global.clone(),
            iteration: plan.iteration,
            rollback: plan.rollback,
            repartitioner: Arc::clone(&self.repartitioner.as_ref()?.0),
        })
    }

    /// A joined rank whose substrate peer must be spawned, consumed by the
    /// driver (loopback/sim spawn from the drive loop).
    pub fn take_pending_spawn(&mut self) -> Option<usize> {
        self.pending_spawn.take()
    }

    /// Consume the pending spawn if it is for `rank` (thread/udp joiner
    /// threads wait on this).
    pub fn take_spawn_if(&mut self, rank: usize) -> bool {
        if self.pending_spawn == Some(rank) {
            self.pending_spawn = None;
            true
        } else {
            false
        }
    }

    /// Assemble the checkpointed global state onto the workload's canvas.
    /// `at` restricts every rank to its newest checkpoint at or before that
    /// iteration (the synchronous realignment target); `None` takes each
    /// rank's latest.
    fn assembled_global(&self, rep: &dyn Repartitioner, at: Option<u64>) -> Vec<f64> {
        let states: Vec<Vec<u8>> = (0..self.peers)
            .filter_map(|r| match at {
                Some(target) => self.fault.checkpoint_at_or_before(r, target),
                None => self.fault.checkpoint(r),
            })
            .map(|c| c.state.clone())
            .collect();
        let canvas = self.canvas.clone().unwrap_or_else(|| rep.global_canvas());
        assemble_global(canvas, &states, rep.item_width())
    }

    /// Publish a new membership plan re-slicing the run over `new_peers`
    /// ranks weighted by the live capacities in `loads` (the joiner, if
    /// any, is weighted at the mean surviving capacity).
    fn publish_plan(
        &mut self,
        loads: &[PeerLoad],
        new_peers: usize,
        at: Option<u64>,
        rollback: Option<(u64, u32)>,
        joined_rank: Option<usize>,
    ) -> bool {
        let Some(rep) = self.repartitioner.as_ref().map(|h| Arc::clone(&h.0)) else {
            return false;
        };
        if rep.items() < new_peers {
            return false;
        }
        let mut weights = self.live_balancer(loads).capacities();
        if new_peers > weights.len() {
            let mean = weights.iter().sum::<f64>() / weights.len() as f64;
            weights.resize(new_peers, mean.max(f64::MIN_POSITIVE));
        }
        let parts = weighted_ranges(rep.item_base(), rep.items(), &weights);
        let global = self.assembled_global(rep.as_ref(), at);
        let iteration = match at {
            Some(target) => target,
            // The iteration the assembled state roughly corresponds to: the
            // oldest latest-checkpoint of any rank (only restored counters
            // use it; live ranks keep their own).
            None => (0..self.peers)
                .map(|r| self.fault.checkpoint(r).map(|c| c.iteration).unwrap_or(0))
                .min()
                .unwrap_or(0),
        };
        self.moved_points += (reslice_moved_items(&self.parts, &parts) * rep.item_width()) as u64;
        self.epoch += 1;
        self.fast.plan_epoch.store(self.epoch, Ordering::Release);
        self.repartitions += 1;
        self.parts = parts.clone();
        self.peers = new_peers;
        self.plan = Some(MembershipPlan {
            epoch: self.epoch,
            parts,
            global,
            iteration,
            rollback,
            joined_rank,
        });
        if let Some(_rank) = joined_rank {
            self.joins += 1;
            // The spawn is armed separately (`VolatilityState::arm_spawn`)
            // once the caller has grown the convergence detector — a joiner
            // thread must never build its engine against the un-grown run.
        }
        true
    }

    /// Release the published plan's joined rank to the substrate spawners.
    /// Called by the join trigger *after* growing the convergence detector.
    pub fn arm_spawn(&mut self) {
        if let Some(plan) = &self.plan {
            if let Some(rank) = plan.joined_rank {
                self.pending_spawn = Some(rank);
            }
        }
    }

    /// Injector query: does `rank`'s clock trigger a scheduled join after
    /// completing `iteration`? (Consumes the event; the caller follows up
    /// with [`VolatilityState::create_join_plan`].)
    pub fn join_due(&mut self, rank: usize, iteration: u64) -> bool {
        let due = self.injector.join_due(rank, iteration);
        self.fast
            .set_next_event(rank, self.injector.next_event_at(rank));
        due
    }

    /// A join triggered at `trigger_iteration`: grow the run by one rank and
    /// publish the re-slice. Returns the plan's `(new peer count, rollback)`
    /// on success; `None` when the workload cannot be repartitioned (the
    /// join is then ignored).
    ///
    /// Synchronous runs realign on a *deterministic* common iteration — the
    /// newest checkpoint-interval multiple every rank is guaranteed to have
    /// deposited (lockstep peers trail the trigger by at most the peer
    /// count) — so the same seeded plan yields the same relaxation counts on
    /// every backend.
    pub fn create_join_plan(
        &mut self,
        trigger_iteration: u64,
        loads: &[PeerLoad],
    ) -> Option<(usize, Option<(u64, u32)>)> {
        self.repartitioner.as_ref()?;
        let new_rank = self.peers;
        let (at, rollback) = if self.scheme == Scheme::Synchronous {
            let interval = self.checkpoint_interval.max(1);
            let target =
                trigger_iteration.saturating_sub(self.peers as u64 - 1) / interval * interval;
            self.generation += 1;
            (Some(target), Some((target, self.generation)))
        } else {
            (None, None)
        };
        if self.publish_plan(loads, new_rank + 1, at, rollback, Some(new_rank)) {
            Some((new_rank + 1, rollback))
        } else {
            if rollback.is_some() {
                // The re-slice was refused (e.g. more ranks than items):
                // roll the speculative generation bump back.
                self.generation -= 1;
            }
            None
        }
    }

    /// Injector query: does `rank` crash after completing `iteration`?
    pub fn should_crash(&mut self, rank: usize, iteration: u64) -> bool {
        let crashed = self.injector.should_crash(rank, iteration);
        self.fast
            .set_next_event(rank, self.injector.next_event_at(rank));
        crashed
    }

    /// Injector query: the rank's current compute-slowdown factor.
    pub fn slowdown_factor(&mut self, rank: usize, iteration: u64) -> f64 {
        let factor = self.injector.slowdown_factor(rank, iteration);
        self.fast
            .set_next_event(rank, self.injector.next_event_at(rank));
        self.fast.set_slowdown(rank, factor);
        factor
    }

    /// Injector query: drain every due link-fault event of `rank` (the
    /// deterministic transport drivers translate these into their own link
    /// models; the engine itself never sees link faults).
    pub fn take_link_events(&mut self, rank: usize, iteration: u64) -> Vec<ChurnEvent> {
        let events = self.injector.take_link_events(rank, iteration);
        if !events.is_empty() {
            self.fast
                .set_next_event(rank, self.injector.next_event_at(rank));
        }
        events
    }

    /// A peer crashed at clock value `now_ns`.
    pub fn on_crash(&mut self, rank: usize, now_ns: u64) {
        self.crashes += 1;
        self.crash_time_ns.insert(rank, now_ns);
    }

    /// Crash events injected so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// The failure of `rank` has been detected: decide and record the
    /// recovery. A spare adopts the rank if one is left; otherwise the
    /// surviving peer with the highest live throughput estimate does
    /// (declared speeds 1.0, measurements from the engines' `PeerLoad`
    /// accounting). Idempotent until the grant is consumed.
    pub fn grant(&mut self, rank: usize, loads: &[PeerLoad]) {
        if self.granted.contains_key(&rank) || !self.crash_time_ns.contains_key(&rank) {
            return;
        }
        let from_iteration = self
            .fault
            .checkpoint(rank)
            .map(|c| c.iteration)
            .unwrap_or(0);
        let action = match self.fault.on_failure(rank) {
            reassign @ RecoveryAction::Reassign { .. } => reassign,
            RecoveryAction::Pause { rank } => {
                let capacities = self.live_balancer(loads).capacities();
                let host = (0..self.peers)
                    .filter(|r| *r != rank)
                    .max_by(|a, b| capacities[*a].total_cmp(&capacities[*b]))
                    .unwrap_or(rank);
                RecoveryAction::Reassign {
                    rank,
                    replacement: NodeId(host),
                    from_iteration,
                }
            }
        };
        self.granted.insert(rank, action);
    }

    /// Whether a recovery has been granted for `rank` and not yet consumed.
    pub fn is_granted(&self, rank: usize) -> bool {
        self.granted.contains_key(&rank)
    }

    /// A live load balancer over the current throughput estimates.
    fn live_balancer(&self, loads: &[PeerLoad]) -> LoadBalancer {
        let mut balancer = LoadBalancer::new(vec![1.0; self.peers]);
        for (rank, load) in loads.iter().enumerate().take(self.peers) {
            if load.points > 0 && load.busy_seconds > 0.0 {
                balancer.record(rank, load.points, load.busy_seconds);
            }
        }
        balancer
    }

    /// The reviving engine consumes its recovery at clock value `now_ns`.
    /// Returns the checkpoint to restore from and, for synchronous runs, the
    /// `(rollback iteration, new generation)` to broadcast: the newest
    /// checkpoint iteration every rank has, so all peers can realign.
    pub fn take_recovery(
        &mut self,
        rank: usize,
        now_ns: u64,
        loads: &[PeerLoad],
    ) -> (Option<Checkpoint>, Option<(u64, u32)>) {
        if let Some(crashed_at) = self.crash_time_ns.remove(&rank) {
            self.downtime_ns += now_ns.saturating_sub(crashed_at);
        }
        self.recoveries += 1;
        let (checkpoint, rollback) = if self.scheme == Scheme::Synchronous {
            self.rollbacks += 1;
            self.generation += 1;
            let target = (0..self.peers)
                .map(|r| self.fault.checkpoint(r).map(|c| c.iteration).unwrap_or(0))
                .min()
                .unwrap_or(0);
            (
                self.fault.checkpoint_at_or_before(rank, target).cloned(),
                Some((target, self.generation)),
            )
        } else {
            (self.fault.checkpoint(rank).cloned(), None)
        };
        // Live repartitioning: apply the capacity-weighted shares for real.
        // Synchronous plans ride the rollback just computed (every rank
        // realigns on the common iteration under the new generation);
        // asynchronous/hybrid plans are adopted at each engine's next safe
        // point. The recovering rank adopts its new slice instead of the
        // plain checkpoint (see `PeerEngine::recover`).
        if self.repartition_on_recovery && self.peers >= 2 {
            let at = rollback.map(|(target, _)| target);
            self.publish_plan(loads, self.peers, at, rollback, None);
        }
        let action = self.granted.remove(&rank);
        // A weighted decomposition needs at least one share unit per peer;
        // populations beyond the notional 100 units scale the base up.
        let proposed = self
            .live_balancer(loads)
            .propose_assignment(REBALANCE_SHARE_UNITS.max(self.peers));
        self.recovery_log.push(RecoveryRecord {
            rank,
            replacement: match action {
                Some(RecoveryAction::Reassign { replacement, .. }) => replacement,
                _ => NodeId(rank),
            },
            from_iteration: checkpoint.as_ref().map(|c| c.iteration).unwrap_or(0),
            rollback_to: rollback.map(|(target, _)| target),
            proposed_shares: (0..self.peers).map(|r| proposed.count(r)).collect(),
        });
        (checkpoint, rollback)
    }

    /// Checkpoint a surviving peer restores on a rollback broadcast: its own
    /// newest checkpoint at or before the broadcast target.
    pub fn checkpoint_for_rollback(&self, rank: usize, to_iteration: u64) -> Option<Checkpoint> {
        self.fault
            .checkpoint_at_or_before(rank, to_iteration)
            .cloned()
    }

    /// Completed recoveries, in order.
    pub fn recovery_log(&self) -> &[RecoveryRecord] {
        &self.recovery_log
    }

    /// Fill a run measurement's volatility counters. Every runtime calls
    /// this after `ConvergenceDetector::finish_run`, so faulty runs report
    /// identical metric shapes on all backends.
    pub fn annotate(&self, measurement: &mut RunMeasurement) {
        measurement.crashes = self.crashes;
        measurement.recoveries = self.recoveries;
        measurement.rollbacks = self.rollbacks;
        measurement.downtime_s = self.downtime_ns as f64 / 1e9;
        measurement.joins = self.joins;
        measurement.repartitions = self.repartitions;
        measurement.moved_points = self.moved_points;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_fires_each_crash_exactly_once_and_not_early() {
        let plan = ChurnPlan::kill(1, 30);
        let mut injector = FaultInjector::new(&plan);
        assert!(!injector.should_crash(1, 29));
        assert!(!injector.should_crash(0, 30), "other ranks unaffected");
        assert!(injector.should_crash(1, 30));
        assert!(!injector.should_crash(1, 31), "the event is consumed");
    }

    #[test]
    fn injector_cannot_skip_a_crash_scheduled_between_queries() {
        // The engine queries once per completed relaxation; a trigger inside
        // a gap (e.g. after a restore jumped the counter) still fires.
        let mut injector = FaultInjector::new(&ChurnPlan::kill(0, 10));
        assert!(injector.should_crash(0, 25));
    }

    #[test]
    fn slowdown_factors_accumulate_and_persist() {
        let plan = ChurnPlan::new(vec![
            ChurnEvent {
                rank: 2,
                at_iteration: 5,
                kind: ChurnEventKind::Slowdown { factor: 2.0 },
            },
            ChurnEvent {
                rank: 2,
                at_iteration: 10,
                kind: ChurnEventKind::Slowdown { factor: 3.0 },
            },
        ]);
        let mut injector = FaultInjector::new(&plan);
        assert_eq!(injector.slowdown_factor(2, 4), 1.0);
        assert_eq!(injector.slowdown_factor(2, 5), 2.0);
        assert_eq!(injector.slowdown_factor(2, 7), 2.0);
        assert_eq!(injector.slowdown_factor(2, 12), 6.0);
        assert_eq!(injector.slowdown_factor(0, 12), 1.0);
    }

    #[test]
    fn co_due_link_events_do_not_jam_the_crash_queue() {
        // A due partition queued behind (in trigger order, before) a due
        // crash must not hide the crash from the kind-specific popper.
        let plan = ChurnPlan::kill(0, 10).with_partition(0, 5, &[0], 1_000, 16);
        let mut injector = FaultInjector::new(&plan);
        assert!(injector.should_crash(0, 10));
        let link = injector.take_link_events(0, 10);
        assert_eq!(link.len(), 1);
        assert!(link[0].kind.is_link_fault());
    }

    #[test]
    fn take_link_events_drains_due_faults_in_schedule_order() {
        let plan = ChurnPlan::new(vec![])
            .with_corruption(1, 8, 3)
            .with_flapping_link(1, 4, 2, 1_000, 8, 2)
            .with_asym_latency(1, 12, 0, 4.0);
        let mut injector = FaultInjector::new(&plan);
        assert!(injector.take_link_events(1, 3).is_empty());
        let first = injector.take_link_events(1, 8);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].at_iteration, 4, "earliest due fault first");
        assert_eq!(first[1].at_iteration, 8);
        let second = injector.take_link_events(1, 20);
        assert_eq!(second.len(), 1);
        assert!(matches!(
            second[0].kind,
            ChurnEventKind::AsymmetricLatency { peer: 0, .. }
        ));
        assert!(injector.take_link_events(1, 99).is_empty(), "consumed");
    }

    #[test]
    fn partition_builder_encodes_the_group_mask() {
        let plan = ChurnPlan::new(vec![]).with_partition(0, 10, &[0, 2, 5], 1_000, 32);
        assert_eq!(plan.link_fault_count(), 1);
        match plan.events[0].kind {
            ChurnEventKind::Partition { group, .. } => {
                assert_eq!(group, 0b100101);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        let json = serde_json::to_string(&plan).expect("link faults serialize");
        let back: ChurnPlan = serde_json::from_str(&json).expect("and round-trip");
        assert_eq!(back, plan);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_hit_distinct_ranks() {
        let a = ChurnPlan::seeded(7, 8, 3, 100);
        let b = ChurnPlan::seeded(7, 8, 3, 100);
        assert_eq!(a, b);
        assert_eq!(a.crash_count(), 3);
        let mut ranks: Vec<usize> = a.events.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        assert_eq!(ranks.len(), 3, "crashes strike distinct ranks");
        for event in &a.events {
            assert!((25..=75).contains(&event.at_iteration));
        }
        assert_ne!(ChurnPlan::seeded(8, 8, 3, 100), a, "different seeds differ");
    }

    #[test]
    fn plans_serialize_for_the_bench_artifacts() {
        let plan = ChurnPlan::seeded(42, 4, 1, 200).with_spares(2);
        let json = serde_json::to_string(&plan).expect("serializes");
        assert!(json.contains("at_iteration"));
    }

    /// A minimal repartitionable workload for coordinator-level tests: 12
    /// one-value items, canvas of zeros, tasks irrelevant (never built).
    struct StubReslicer;

    impl Repartitioner for StubReslicer {
        fn items(&self) -> usize {
            12
        }
        fn item_width(&self) -> usize {
            1
        }
        fn global_canvas(&self) -> Vec<f64> {
            vec![0.0; 12]
        }
        fn task_for(
            &self,
            _rank: usize,
            _parts: &[(usize, usize)],
            _global: &[f64],
            _iteration: u64,
        ) -> Box<dyn crate::app::IterativeTask> {
            unreachable!("coordinator tests never build tasks")
        }
    }

    fn stub_state(start: u32, count: u32, value: f64) -> Vec<u8> {
        crate::workload::encode_block_state(
            start as usize,
            count as usize,
            &vec![value; count as usize],
        )
    }

    #[test]
    fn join_due_consumes_the_event_once() {
        let plan = ChurnPlan::new(vec![]).with_join(2, 15);
        let mut vol = VolatilityState::new(&plan, 3, Scheme::Asynchronous);
        assert!(!vol.join_due(2, 14));
        assert!(!vol.join_due(0, 15), "only the trigger rank's clock counts");
        assert!(vol.join_due(2, 15));
        assert!(!vol.join_due(2, 16), "the event is consumed");
    }

    #[test]
    fn join_without_a_repartitioner_is_ignored() {
        let plan = ChurnPlan::new(vec![]).with_join(0, 5);
        let mut vol = VolatilityState::new(&plan, 2, Scheme::Asynchronous);
        assert!(vol.join_due(0, 5));
        assert!(vol.create_join_plan(5, &[PeerLoad::default(); 2]).is_none());
        assert_eq!(vol.peers(), 2, "the run does not grow");
    }

    #[test]
    fn create_join_plan_grows_the_run_and_gates_the_spawn() {
        let plan = ChurnPlan::new(vec![])
            .with_join(0, 10)
            .with_checkpoint_interval(4);
        let mut vol = VolatilityState::new(&plan, 2, Scheme::Asynchronous);
        vol.set_repartitioner(ReslicerHandle(Arc::new(StubReslicer)));
        for rank in 0..2 {
            vol.store_checkpoint(Checkpoint {
                rank,
                iteration: 8,
                state: stub_state(6 * rank as u32, 6, rank as f64 + 1.0),
            });
        }
        let (new_peers, rollback) = vol
            .create_join_plan(10, &[PeerLoad::default(); 2])
            .expect("plan published");
        assert_eq!(new_peers, 3);
        assert!(rollback.is_none(), "asynchronous joins do not roll back");
        assert_eq!(vol.peers(), 3);
        let plan = vol.plan().expect("published").clone();
        assert_eq!(plan.epoch, 1);
        assert_eq!(plan.parts.len(), 3);
        assert_eq!(plan.joined_rank, Some(2));
        // The assembled global carries the checkpointed values.
        assert_eq!(plan.global[0], 1.0);
        assert_eq!(plan.global[11], 2.0);
        // The spawn is gated until the caller grew the detector.
        assert!(vol.take_pending_spawn().is_none());
        vol.arm_spawn();
        assert!(!vol.take_spawn_if(1), "only the joined rank's spawn");
        assert!(vol.take_spawn_if(2));
        assert!(vol.take_pending_spawn().is_none(), "consumed once");
    }

    #[test]
    fn synchronous_join_realigns_on_a_deterministic_checkpoint_multiple() {
        let plan = ChurnPlan::new(vec![])
            .with_join(0, 21)
            .with_checkpoint_interval(5);
        let mut vol = VolatilityState::new(&plan, 3, Scheme::Synchronous);
        vol.set_repartitioner(ReslicerHandle(Arc::new(StubReslicer)));
        for rank in 0..3 {
            for iteration in [0u64, 5, 10, 15] {
                vol.store_checkpoint(Checkpoint {
                    rank,
                    iteration,
                    state: stub_state(4 * rank as u32, 4, iteration as f64),
                });
            }
        }
        let (_, rollback) = vol
            .create_join_plan(21, &[PeerLoad::default(); 3])
            .expect("plan published");
        // target = largest interval multiple every lockstep peer (trailing
        // the trigger by at most peers − 1) is guaranteed to have: 21 − 2 =
        // 19 → 15.
        assert_eq!(rollback, Some((15, 1)));
        let plan = vol.plan().unwrap();
        assert_eq!(plan.iteration, 15);
        assert!(
            plan.global.iter().all(|&v| v == 15.0),
            "states at the target"
        );
    }

    #[test]
    fn repartitioning_recovery_applies_the_capacity_weighted_shares() {
        let plan = ChurnPlan::kill(0, 10)
            .with_spares(0)
            .with_repartition(true)
            .with_checkpoint_interval(5);
        let mut vol = VolatilityState::new(&plan, 2, Scheme::Asynchronous);
        vol.set_repartitioner(ReslicerHandle(Arc::new(StubReslicer)));
        for rank in 0..2 {
            vol.store_checkpoint(Checkpoint {
                rank,
                iteration: 10,
                state: stub_state(6 * rank as u32, 6, 3.0),
            });
        }
        let loads = vec![
            PeerLoad {
                points: 1_000,
                busy_seconds: 1.0,
            },
            PeerLoad {
                points: 4_000,
                busy_seconds: 1.0,
            },
        ];
        vol.on_crash(0, 100);
        vol.grant(0, &loads);
        let _ = vol.take_recovery(0, 200, &loads);
        let plan = vol.plan().expect("recovery published the re-slice");
        assert_eq!(plan.epoch, 1);
        assert!(plan.rollback.is_none());
        assert!(
            plan.parts[1].1 > plan.parts[0].1,
            "the 4x-throughput peer takes the larger share: {:?}",
            plan.parts
        );
        let mut measurement =
            RunMeasurement::from_run(2, desim::SimDuration::from_nanos(1), vec![0, 0], true);
        vol.annotate(&mut measurement);
        assert_eq!(measurement.repartitions, 1);
        assert_eq!(measurement.joins, 0);
        assert!(measurement.moved_points > 0);
    }

    #[test]
    fn recovery_prefers_a_spare_then_the_strongest_survivor() {
        let plan = ChurnPlan::kill(0, 10).with_spares(1);
        let mut vol = VolatilityState::new(&plan, 3, Scheme::Asynchronous);
        vol.store_checkpoint(Checkpoint {
            rank: 0,
            iteration: 8,
            state: vec![1],
        });
        let loads = vec![
            PeerLoad::default(),
            PeerLoad {
                points: 1_000,
                busy_seconds: 1.0,
            },
            PeerLoad {
                points: 4_000,
                busy_seconds: 1.0,
            },
        ];
        // First crash: the spare (NodeId 3 = peers + 0) adopts the rank.
        vol.on_crash(0, 100);
        vol.grant(0, &loads);
        assert!(vol.is_granted(0));
        let (checkpoint, rollback) = vol.take_recovery(0, 200, &loads);
        assert_eq!(checkpoint.unwrap().iteration, 8);
        assert!(rollback.is_none(), "asynchronous recovery never rolls back");
        assert_eq!(vol.recovery_log()[0].replacement, NodeId(3));
        // Second crash: no spares left — the fastest survivor (rank 2) hosts.
        vol.on_crash(0, 300);
        vol.grant(0, &loads);
        let _ = vol.take_recovery(0, 400, &loads);
        assert_eq!(vol.recovery_log()[1].replacement, NodeId(2));
        assert_eq!(vol.recoveries, 2);
        assert_eq!(vol.rollbacks, 0);
        assert_eq!(vol.downtime_ns, 200);
    }

    #[test]
    fn synchronous_recovery_computes_a_common_rollback_target() {
        let plan = ChurnPlan::kill(1, 50).with_checkpoint_interval(20);
        let mut vol = VolatilityState::new(&plan, 2, Scheme::Synchronous);
        // Both ranks checkpointed at 0, 20 and 40; the victim also at 40.
        for rank in 0..2 {
            for iteration in [0, 20, 40] {
                vol.store_checkpoint(Checkpoint {
                    rank,
                    iteration,
                    state: vec![rank as u8, iteration as u8],
                });
            }
        }
        vol.on_crash(1, 1_000);
        vol.grant(1, &[PeerLoad::default(); 2]);
        let (checkpoint, rollback) = vol.take_recovery(1, 2_000, &[PeerLoad::default(); 2]);
        let (target, generation) = rollback.expect("synchronous runs roll back");
        assert_eq!(target, 40, "newest iteration every rank has checkpointed");
        assert_eq!(generation, 1);
        assert_eq!(checkpoint.unwrap().iteration, 40);
        // The survivor's rollback lookup lands on the same iteration.
        assert_eq!(
            vol.checkpoint_for_rollback(0, target).unwrap().iteration,
            40
        );
        assert_eq!(vol.rollbacks, 1);
    }
}
