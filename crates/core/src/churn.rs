//! Peer volatility: deterministic failure injection, live checkpointing and
//! recovery coordination.
//!
//! The paper targets desktop grids, where peers join and leave while an
//! application runs, and argues that *asynchronous* iterative schemes
//! tolerate this volatility where synchronous ones cannot. This module is
//! the subsystem that lets the reproduction run that experiment on every
//! runtime backend:
//!
//! * [`ChurnPlan`] — a seeded, serializable schedule of peer events (crash
//!   at relaxation `X`, slow down by a factor), expressed against each
//!   peer's own relaxation count so the *same* plan is meaningful on the
//!   virtual-time, event-count and wall-clock substrates alike.
//! * [`FaultInjector`] — the runtime consumer of a plan: each peer's engine
//!   asks it after every completed relaxation whether that relaxation was
//!   the peer's last.
//! * [`VolatilityState`] — the per-run shared coordinator: it owns the
//!   [`FaultManager`] checkpoint store the engines deposit into, decides
//!   recovery (spare peer if one is left, otherwise the strongest survivor
//!   by *live* [`crate::load_balance`] throughput estimates), computes the
//!   synchronous rollback target, and accumulates the recovery counters
//!   reported in [`crate::metrics::RunMeasurement`].
//!
//! # Crash / recovery lifecycle
//!
//! 1. The engine completes relaxation `X` and the injector fires: the sweep's
//!    updates are never published, the peer marks itself crashed and goes
//!    silent. The substrate makes the crash real to the degree it can — the
//!    UDP runtime drops the peer's socket (in-flight datagrams are lost for
//!    real), the thread runtime discards its inbox, the deterministic
//!    runtimes stop driving the peer.
//! 2. Detection: on the wall-clock backends the dead peer stops pinging the
//!    [`crate::topology_manager::TopologyManager`] and is evicted after
//!    three missed ping periods
//!    ([`crate::topology_manager::TopologyManager::evictions_since`] feeds
//!    the recovery path); the deterministic backends model the same latency
//!    with the plan's [`ChurnPlan::detection_delay_ns`].
//! 3. Recovery: [`VolatilityState::grant`] consumes
//!    [`FaultManager::on_failure`] — a spare peer adopts the rank, or, with
//!    no spares left, the surviving peer with the highest measured
//!    throughput does. The engine restores its task from the latest
//!    checkpoint and resumes.
//! 4. Scheme semantics: asynchronous and hybrid runs simply absorb the stale
//!    restart (neighbours keep iterating on old boundary data — exactly the
//!    staleness those schemes are built for). A synchronous run cannot: the
//!    recovering peer computes the newest checkpoint iteration *every* rank
//!    has, broadcasts a rollback message, and all peers restart from that
//!    common iteration under a new report generation (stale in-flight
//!    convergence reports are discarded by generation).
//!
//! Applying the re-decomposition mid-run (shrinking the dead rank's block
//! onto survivors) would need repartition support in every workload;
//! [`VolatilityState`] computes the capacity-weighted assignment
//! ([`obstacle::BlockDecomposition::weighted`] over live throughputs) and
//! records it in the [`RecoveryRecord`], but the restart keeps the original
//! blocks. ROADMAP.md lists live repartitioning as an open item.

use crate::fault::{Checkpoint, FaultManager, RecoveryAction};
use crate::load_balance::{LoadBalancer, PeerLoad};
use crate::metrics::RunMeasurement;
use netsim::NodeId;
use p2psap::Scheme;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What happens to a peer at a scheduled point of a [`ChurnPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnEventKind {
    /// The peer dies: its un-published sweep and in-flight traffic are lost,
    /// and it stays silent until the recovery path revives the rank.
    Crash,
    /// The peer's compute slows down permanently by `factor` (≥ 1.0). On the
    /// simulated backend this scales the virtual compute cost; the
    /// wall-clock backends run the kernel for real and ignore it.
    Slowdown {
        /// Multiplier applied to the peer's per-sweep compute cost.
        factor: f64,
    },
}

/// One scheduled peer event. The trigger is the *victim's own relaxation
/// count* — the only clock all four runtime backends share — so a plan
/// replays identically on the deterministic substrates and meaningfully on
/// the wall-clock ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Rank the event strikes.
    pub rank: usize,
    /// The event fires once the rank completes this many relaxations.
    pub at_iteration: u64,
    /// What happens.
    pub kind: ChurnEventKind,
}

/// A deterministic, seeded schedule of peer volatility, consumable by every
/// runtime backend via [`crate::runtime::RunConfig::churn`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// The scheduled events.
    pub events: Vec<ChurnEvent>,
    /// Engines deposit a checkpoint every this many relaxations (and once at
    /// iteration 0, so a rollback target always exists).
    pub checkpoint_interval: u64,
    /// Failure-detection latency modelled by the simulated backend
    /// (nanoseconds of virtual time). The wall-clock backends detect for
    /// real, through three missed ping periods of the topology manager.
    pub detection_delay_ns: u64,
    /// Failure-detection latency on the loopback backend, whose clock ticks
    /// one unit per engine event rather than per nanosecond.
    pub detection_delay_events: u64,
    /// Spare peers available to adopt a dead rank before the recovery path
    /// falls back to the strongest survivor.
    pub spares: usize,
}

impl ChurnPlan {
    /// Default checkpoint interval (relaxations).
    pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 20;

    /// Default modelled detection latency: 30 ms, three periods of a 10 ms
    /// ping — the same rule the wall-clock topology manager applies.
    pub const DEFAULT_DETECTION_DELAY_NS: u64 = 30_000_000;

    /// Default modelled detection latency in loopback engine events (a few
    /// sweeps' worth of downtime for the surviving peers).
    pub const DEFAULT_DETECTION_DELAY_EVENTS: u64 = 64;

    /// A plan with the given events and the default knobs.
    pub fn new(events: Vec<ChurnEvent>) -> Self {
        Self {
            events,
            checkpoint_interval: Self::DEFAULT_CHECKPOINT_INTERVAL,
            detection_delay_ns: Self::DEFAULT_DETECTION_DELAY_NS,
            detection_delay_events: Self::DEFAULT_DETECTION_DELAY_EVENTS,
            spares: 1,
        }
    }

    /// The canonical fault-tolerance experiment: kill one peer once it
    /// completes `at_iteration` relaxations.
    pub fn kill(rank: usize, at_iteration: u64) -> Self {
        Self::new(vec![ChurnEvent {
            rank,
            at_iteration,
            kind: ChurnEventKind::Crash,
        }])
    }

    /// A seeded random plan: `crashes` distinct ranks (of `peers`) crash at
    /// iterations drawn from the middle half of `[1, horizon]`. The same
    /// seed always yields the same plan.
    pub fn seeded(seed: u64, peers: usize, crashes: usize, horizon: u64) -> Self {
        assert!(peers >= 1);
        let crashes = crashes.min(peers);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ranks: Vec<usize> = (0..peers).collect();
        // Fisher-Yates over the rank vector, then take the prefix.
        for i in (1..peers).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            ranks.swap(i, j);
        }
        let lo = (horizon / 4).max(1);
        let span = (horizon / 2).max(1);
        let events = ranks
            .into_iter()
            .take(crashes)
            .map(|rank| ChurnEvent {
                rank,
                at_iteration: lo + rng.next_u64() % span,
                kind: ChurnEventKind::Crash,
            })
            .collect();
        Self::new(events)
    }

    /// Replace the checkpoint interval.
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        assert!(interval >= 1, "checkpoint interval must be at least 1");
        self.checkpoint_interval = interval;
        self
    }

    /// Replace the modelled detection latency of the simulated backend.
    pub fn with_detection_delay_ns(mut self, delay_ns: u64) -> Self {
        self.detection_delay_ns = delay_ns;
        self
    }

    /// Replace the modelled detection latency of the loopback backend.
    pub fn with_detection_delay_events(mut self, events: u64) -> Self {
        self.detection_delay_events = events;
        self
    }

    /// Replace the spare-peer pool size.
    pub fn with_spares(mut self, spares: usize) -> Self {
        self.spares = spares;
        self
    }

    /// Number of crash events in the plan.
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == ChurnEventKind::Crash)
            .count()
    }
}

/// Runtime consumer of a [`ChurnPlan`]: tracks which events have fired.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Pending events per rank, sorted by trigger iteration descending so
    /// the next one to fire sits at the back.
    pending: HashMap<usize, Vec<ChurnEvent>>,
    /// Accumulated slowdown factor per rank (product of fired events).
    slowdown: HashMap<usize, f64>,
}

impl FaultInjector {
    /// Arm the injector with a plan.
    pub fn new(plan: &ChurnPlan) -> Self {
        let mut pending: HashMap<usize, Vec<ChurnEvent>> = HashMap::new();
        for event in &plan.events {
            pending.entry(event.rank).or_default().push(*event);
        }
        for events in pending.values_mut() {
            events.sort_by_key(|e| std::cmp::Reverse(e.at_iteration));
        }
        Self {
            pending,
            slowdown: HashMap::new(),
        }
    }

    /// `rank` just completed relaxation `iteration`: does it crash now? The
    /// trigger is `at_iteration <= iteration`, so a crash scheduled inside a
    /// checkpoint interval cannot be skipped over. Consumes the event.
    pub fn should_crash(&mut self, rank: usize, iteration: u64) -> bool {
        let Some(events) = self.pending.get_mut(&rank) else {
            return false;
        };
        let due = events
            .last()
            .is_some_and(|e| e.kind == ChurnEventKind::Crash && e.at_iteration <= iteration);
        if due {
            events.pop();
        }
        due
    }

    /// The compute-slowdown factor of `rank` as of relaxation `iteration`
    /// (1.0 = full speed). Fired slowdown events accumulate multiplicatively
    /// and persist.
    pub fn slowdown_factor(&mut self, rank: usize, iteration: u64) -> f64 {
        if let Some(events) = self.pending.get_mut(&rank) {
            while let Some(event) = events.last().copied() {
                match event.kind {
                    ChurnEventKind::Slowdown { factor } if event.at_iteration <= iteration => {
                        events.pop();
                        *self.slowdown.entry(rank).or_insert(1.0) *= factor;
                    }
                    _ => break,
                }
            }
        }
        self.slowdown.get(&rank).copied().unwrap_or(1.0)
    }
}

/// One completed recovery, for observability (surfaced by the churn bench).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// The rank that died and was revived.
    pub rank: usize,
    /// The peer that adopted the rank (a spare, or the strongest survivor).
    pub replacement: NodeId,
    /// Checkpoint iteration the rank restarted from.
    pub from_iteration: u64,
    /// The common iteration a synchronous run rolled back to (`None` for
    /// asynchronous/hybrid recoveries, which absorb the stale restart).
    pub rollback_to: Option<u64>,
    /// The capacity-weighted block shares the load balancer proposes from
    /// the live throughput estimates (advisory; see the module docs).
    pub proposed_shares: Vec<usize>,
}

/// Notional block count the advisory weighted re-decomposition is expressed
/// over (shares out of 100).
const REBALANCE_SHARE_UNITS: usize = 100;

/// Per-run shared coordinator of the volatility subsystem. One per run, like
/// the [`crate::runtime::engine::ConvergenceDetector`]; engines and drivers
/// reach it through [`SharedVolatility`].
#[derive(Debug)]
pub struct VolatilityState {
    scheme: Scheme,
    peers: usize,
    checkpoint_interval: u64,
    detection_delay_ns: u64,
    detection_delay_events: u64,
    injector: FaultInjector,
    fault: FaultManager,
    /// Rollback generation; bumped on every synchronous recovery.
    generation: u32,
    crashes: u64,
    recoveries: u64,
    rollbacks: u64,
    downtime_ns: u64,
    /// Clock value at each un-recovered crash.
    crash_time_ns: HashMap<usize, u64>,
    /// Recovery decisions taken but not yet consumed by the reviving engine.
    granted: HashMap<usize, RecoveryAction>,
    /// Completed recoveries, in order.
    recovery_log: Vec<RecoveryRecord>,
}

/// A [`VolatilityState`] shared between the peers and driver of one run.
pub type SharedVolatility = Arc<Mutex<VolatilityState>>;

impl VolatilityState {
    /// Create the coordinator for a run of `peers` peers under `plan`.
    pub fn new(plan: &ChurnPlan, peers: usize, scheme: Scheme) -> Self {
        Self {
            scheme,
            peers,
            checkpoint_interval: plan.checkpoint_interval.max(1),
            detection_delay_ns: plan.detection_delay_ns,
            detection_delay_events: plan.detection_delay_events,
            injector: FaultInjector::new(plan),
            fault: FaultManager::new((0..plan.spares).map(|i| NodeId(peers + i)).collect()),
            generation: 0,
            crashes: 0,
            recoveries: 0,
            rollbacks: 0,
            downtime_ns: 0,
            crash_time_ns: HashMap::new(),
            granted: HashMap::new(),
            recovery_log: Vec::new(),
        }
    }

    /// Create a shared coordinator handle.
    pub fn shared(plan: &ChurnPlan, peers: usize, scheme: Scheme) -> SharedVolatility {
        Arc::new(Mutex::new(Self::new(plan, peers, scheme)))
    }

    /// Relaxations between checkpoints.
    pub fn checkpoint_interval(&self) -> u64 {
        self.checkpoint_interval
    }

    /// Modelled failure-detection latency of the simulated backend.
    pub fn detection_delay_ns(&self) -> u64 {
        self.detection_delay_ns
    }

    /// Modelled failure-detection latency of the loopback backend (events).
    pub fn detection_delay_events(&self) -> u64 {
        self.detection_delay_events
    }

    /// Deposit a checkpoint into the store.
    pub fn store_checkpoint(&mut self, checkpoint: Checkpoint) {
        self.fault.store_checkpoint(checkpoint);
    }

    /// Injector query: does `rank` crash after completing `iteration`?
    pub fn should_crash(&mut self, rank: usize, iteration: u64) -> bool {
        self.injector.should_crash(rank, iteration)
    }

    /// Injector query: the rank's current compute-slowdown factor.
    pub fn slowdown_factor(&mut self, rank: usize, iteration: u64) -> f64 {
        self.injector.slowdown_factor(rank, iteration)
    }

    /// A peer crashed at clock value `now_ns`.
    pub fn on_crash(&mut self, rank: usize, now_ns: u64) {
        self.crashes += 1;
        self.crash_time_ns.insert(rank, now_ns);
    }

    /// Crash events injected so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// The failure of `rank` has been detected: decide and record the
    /// recovery. A spare adopts the rank if one is left; otherwise the
    /// surviving peer with the highest live throughput estimate does
    /// (declared speeds 1.0, measurements from the engines' `PeerLoad`
    /// accounting). Idempotent until the grant is consumed.
    pub fn grant(&mut self, rank: usize, loads: &[PeerLoad]) {
        if self.granted.contains_key(&rank) || !self.crash_time_ns.contains_key(&rank) {
            return;
        }
        let from_iteration = self
            .fault
            .checkpoint(rank)
            .map(|c| c.iteration)
            .unwrap_or(0);
        let action = match self.fault.on_failure(rank) {
            reassign @ RecoveryAction::Reassign { .. } => reassign,
            RecoveryAction::Pause { rank } => {
                let capacities = self.live_balancer(loads).capacities();
                let host = (0..self.peers)
                    .filter(|r| *r != rank)
                    .max_by(|a, b| capacities[*a].total_cmp(&capacities[*b]))
                    .unwrap_or(rank);
                RecoveryAction::Reassign {
                    rank,
                    replacement: NodeId(host),
                    from_iteration,
                }
            }
        };
        self.granted.insert(rank, action);
    }

    /// Whether a recovery has been granted for `rank` and not yet consumed.
    pub fn is_granted(&self, rank: usize) -> bool {
        self.granted.contains_key(&rank)
    }

    /// A live load balancer over the current throughput estimates.
    fn live_balancer(&self, loads: &[PeerLoad]) -> LoadBalancer {
        let mut balancer = LoadBalancer::new(vec![1.0; self.peers]);
        for (rank, load) in loads.iter().enumerate().take(self.peers) {
            if load.points > 0 && load.busy_seconds > 0.0 {
                balancer.record(rank, load.points, load.busy_seconds);
            }
        }
        balancer
    }

    /// The reviving engine consumes its recovery at clock value `now_ns`.
    /// Returns the checkpoint to restore from and, for synchronous runs, the
    /// `(rollback iteration, new generation)` to broadcast: the newest
    /// checkpoint iteration every rank has, so all peers can realign.
    pub fn take_recovery(
        &mut self,
        rank: usize,
        now_ns: u64,
        loads: &[PeerLoad],
    ) -> (Option<Checkpoint>, Option<(u64, u32)>) {
        if let Some(crashed_at) = self.crash_time_ns.remove(&rank) {
            self.downtime_ns += now_ns.saturating_sub(crashed_at);
        }
        self.recoveries += 1;
        let (checkpoint, rollback) = if self.scheme == Scheme::Synchronous {
            self.rollbacks += 1;
            self.generation += 1;
            let target = (0..self.peers)
                .map(|r| self.fault.checkpoint(r).map(|c| c.iteration).unwrap_or(0))
                .min()
                .unwrap_or(0);
            (
                self.fault.checkpoint_at_or_before(rank, target).cloned(),
                Some((target, self.generation)),
            )
        } else {
            (self.fault.checkpoint(rank).cloned(), None)
        };
        let action = self.granted.remove(&rank);
        let proposed = self
            .live_balancer(loads)
            .propose_assignment(REBALANCE_SHARE_UNITS);
        self.recovery_log.push(RecoveryRecord {
            rank,
            replacement: match action {
                Some(RecoveryAction::Reassign { replacement, .. }) => replacement,
                _ => NodeId(rank),
            },
            from_iteration: checkpoint.as_ref().map(|c| c.iteration).unwrap_or(0),
            rollback_to: rollback.map(|(target, _)| target),
            proposed_shares: (0..self.peers).map(|r| proposed.count(r)).collect(),
        });
        (checkpoint, rollback)
    }

    /// Checkpoint a surviving peer restores on a rollback broadcast: its own
    /// newest checkpoint at or before the broadcast target.
    pub fn checkpoint_for_rollback(&self, rank: usize, to_iteration: u64) -> Option<Checkpoint> {
        self.fault
            .checkpoint_at_or_before(rank, to_iteration)
            .cloned()
    }

    /// Completed recoveries, in order.
    pub fn recovery_log(&self) -> &[RecoveryRecord] {
        &self.recovery_log
    }

    /// Fill a run measurement's volatility counters. Every runtime calls
    /// this after `ConvergenceDetector::finish_run`, so faulty runs report
    /// identical metric shapes on all backends.
    pub fn annotate(&self, measurement: &mut RunMeasurement) {
        measurement.crashes = self.crashes;
        measurement.recoveries = self.recoveries;
        measurement.rollbacks = self.rollbacks;
        measurement.downtime_s = self.downtime_ns as f64 / 1e9;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_fires_each_crash_exactly_once_and_not_early() {
        let plan = ChurnPlan::kill(1, 30);
        let mut injector = FaultInjector::new(&plan);
        assert!(!injector.should_crash(1, 29));
        assert!(!injector.should_crash(0, 30), "other ranks unaffected");
        assert!(injector.should_crash(1, 30));
        assert!(!injector.should_crash(1, 31), "the event is consumed");
    }

    #[test]
    fn injector_cannot_skip_a_crash_scheduled_between_queries() {
        // The engine queries once per completed relaxation; a trigger inside
        // a gap (e.g. after a restore jumped the counter) still fires.
        let mut injector = FaultInjector::new(&ChurnPlan::kill(0, 10));
        assert!(injector.should_crash(0, 25));
    }

    #[test]
    fn slowdown_factors_accumulate_and_persist() {
        let plan = ChurnPlan::new(vec![
            ChurnEvent {
                rank: 2,
                at_iteration: 5,
                kind: ChurnEventKind::Slowdown { factor: 2.0 },
            },
            ChurnEvent {
                rank: 2,
                at_iteration: 10,
                kind: ChurnEventKind::Slowdown { factor: 3.0 },
            },
        ]);
        let mut injector = FaultInjector::new(&plan);
        assert_eq!(injector.slowdown_factor(2, 4), 1.0);
        assert_eq!(injector.slowdown_factor(2, 5), 2.0);
        assert_eq!(injector.slowdown_factor(2, 7), 2.0);
        assert_eq!(injector.slowdown_factor(2, 12), 6.0);
        assert_eq!(injector.slowdown_factor(0, 12), 1.0);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_hit_distinct_ranks() {
        let a = ChurnPlan::seeded(7, 8, 3, 100);
        let b = ChurnPlan::seeded(7, 8, 3, 100);
        assert_eq!(a, b);
        assert_eq!(a.crash_count(), 3);
        let mut ranks: Vec<usize> = a.events.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        assert_eq!(ranks.len(), 3, "crashes strike distinct ranks");
        for event in &a.events {
            assert!((25..=75).contains(&event.at_iteration));
        }
        assert_ne!(ChurnPlan::seeded(8, 8, 3, 100), a, "different seeds differ");
    }

    #[test]
    fn plans_serialize_for_the_bench_artifacts() {
        let plan = ChurnPlan::seeded(42, 4, 1, 200).with_spares(2);
        let json = serde_json::to_string(&plan).expect("serializes");
        assert!(json.contains("at_iteration"));
    }

    #[test]
    fn recovery_prefers_a_spare_then_the_strongest_survivor() {
        let plan = ChurnPlan::kill(0, 10).with_spares(1);
        let mut vol = VolatilityState::new(&plan, 3, Scheme::Asynchronous);
        vol.store_checkpoint(Checkpoint {
            rank: 0,
            iteration: 8,
            state: vec![1],
        });
        let loads = vec![
            PeerLoad::default(),
            PeerLoad {
                points: 1_000,
                busy_seconds: 1.0,
            },
            PeerLoad {
                points: 4_000,
                busy_seconds: 1.0,
            },
        ];
        // First crash: the spare (NodeId 3 = peers + 0) adopts the rank.
        vol.on_crash(0, 100);
        vol.grant(0, &loads);
        assert!(vol.is_granted(0));
        let (checkpoint, rollback) = vol.take_recovery(0, 200, &loads);
        assert_eq!(checkpoint.unwrap().iteration, 8);
        assert!(rollback.is_none(), "asynchronous recovery never rolls back");
        assert_eq!(vol.recovery_log()[0].replacement, NodeId(3));
        // Second crash: no spares left — the fastest survivor (rank 2) hosts.
        vol.on_crash(0, 300);
        vol.grant(0, &loads);
        let _ = vol.take_recovery(0, 400, &loads);
        assert_eq!(vol.recovery_log()[1].replacement, NodeId(2));
        assert_eq!(vol.recoveries, 2);
        assert_eq!(vol.rollbacks, 0);
        assert_eq!(vol.downtime_ns, 200);
    }

    #[test]
    fn synchronous_recovery_computes_a_common_rollback_target() {
        let plan = ChurnPlan::kill(1, 50).with_checkpoint_interval(20);
        let mut vol = VolatilityState::new(&plan, 2, Scheme::Synchronous);
        // Both ranks checkpointed at 0, 20 and 40; the victim also at 40.
        for rank in 0..2 {
            for iteration in [0, 20, 40] {
                vol.store_checkpoint(Checkpoint {
                    rank,
                    iteration,
                    state: vec![rank as u8, iteration as u8],
                });
            }
        }
        vol.on_crash(1, 1_000);
        vol.grant(1, &[PeerLoad::default(); 2]);
        let (checkpoint, rollback) = vol.take_recovery(1, 2_000, &[PeerLoad::default(); 2]);
        let (target, generation) = rollback.expect("synchronous runs roll back");
        assert_eq!(target, 40, "newest iteration every rank has checkpointed");
        assert_eq!(generation, 1);
        assert_eq!(checkpoint.unwrap().iteration, 40);
        // The survivor's rollback lookup lands on the same iteration.
        assert_eq!(
            vol.checkpoint_for_rollback(0, target).unwrap().iteration,
            40
        );
        assert_eq!(vol.rollbacks, 1);
    }
}
