//! Load balancing (paper architecture component 5 — listed but "not yet
//! developed" in the paper's implementation; implemented here as an
//! extension).
//!
//! The estimator tracks per-peer throughput (points relaxed per second) and
//! produces a capacity-proportional plane assignment via
//! [`obstacle::BlockDecomposition::weighted`], which the task manager can use
//! at start time (static balancing from declared CPU speeds) or when
//! re-distributing after a membership change.

use obstacle::BlockDecomposition;
use serde::{Deserialize, Serialize};

/// Observed workload of one peer.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PeerLoad {
    /// Grid points relaxed so far.
    pub points: u64,
    /// Busy time spent relaxing, in seconds.
    pub busy_seconds: f64,
}

impl PeerLoad {
    /// Estimated throughput in points per second (None until data exists).
    pub fn throughput(&self) -> Option<f64> {
        if self.busy_seconds > 0.0 && self.points > 0 {
            Some(self.points as f64 / self.busy_seconds)
        } else {
            None
        }
    }
}

/// Tracks peer workloads and proposes block assignments.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    loads: Vec<PeerLoad>,
    declared_speed: Vec<f64>,
}

impl LoadBalancer {
    /// Create a balancer for `peers` peers with their declared relative CPU
    /// speeds (used until throughput measurements exist).
    pub fn new(declared_speed: Vec<f64>) -> Self {
        assert!(!declared_speed.is_empty());
        assert!(declared_speed.iter().all(|s| *s > 0.0));
        Self {
            loads: vec![PeerLoad::default(); declared_speed.len()],
            declared_speed,
        }
    }

    /// Record that peer `rank` relaxed `points` points in `seconds` seconds.
    pub fn record(&mut self, rank: usize, points: u64, seconds: f64) {
        let load = &mut self.loads[rank];
        load.points += points;
        load.busy_seconds += seconds.max(0.0);
    }

    /// Current capacity estimate of each peer: measured throughput when
    /// available, declared speed otherwise (normalised so the two sources mix
    /// sensibly).
    pub fn capacities(&self) -> Vec<f64> {
        // Normalise measured throughputs by the mean measured throughput of
        // speed-1 peers; fall back to declared speeds.
        let measured: Vec<Option<f64>> = self.loads.iter().map(|l| l.throughput()).collect();
        let reference = measured
            .iter()
            .zip(self.declared_speed.iter())
            .filter_map(|(m, s)| m.map(|t| t / s))
            .fold((0.0, 0usize), |(sum, count), v| (sum + v, count + 1));
        let per_speed_unit = if reference.1 > 0 {
            reference.0 / reference.1 as f64
        } else {
            1.0
        };
        measured
            .iter()
            .zip(self.declared_speed.iter())
            .map(|(m, s)| m.unwrap_or(s * per_speed_unit))
            .collect()
    }

    /// Propose a plane assignment for a grid with `planes` planes.
    pub fn propose_assignment(&self, planes: usize) -> BlockDecomposition {
        BlockDecomposition::weighted(planes, &self.capacities())
    }

    /// Identify the most- and least-loaded peers (by planes per capacity) in
    /// an existing assignment; returns `Some((overloaded, underloaded))` when
    /// their imbalance exceeds `threshold` (e.g. 1.5 = 50 % more work per unit
    /// of capacity).
    pub fn detect_imbalance(
        &self,
        assignment: &BlockDecomposition,
        threshold: f64,
    ) -> Option<(usize, usize)> {
        let capacities = self.capacities();
        let ratio = |r: usize| assignment.count(r) as f64 / capacities[r];
        let (mut max_r, mut min_r) = (0, 0);
        for r in 1..assignment.alpha() {
            if ratio(r) > ratio(max_r) {
                max_r = r;
            }
            if ratio(r) < ratio(min_r) {
                min_r = r;
            }
        }
        if ratio(max_r) > threshold * ratio(min_r) {
            Some((max_r, min_r))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_speeds_drive_initial_assignment() {
        let lb = LoadBalancer::new(vec![1.0, 2.0, 1.0]);
        let assignment = lb.propose_assignment(40);
        assert_eq!(assignment.alpha(), 3);
        assert!(assignment.count(1) > assignment.count(0));
        let total: usize = (0..3).map(|r| assignment.count(r)).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn measurements_override_declared_speeds() {
        let mut lb = LoadBalancer::new(vec![1.0, 1.0]);
        // Peer 0 measured twice as fast as peer 1.
        lb.record(0, 20_000, 1.0);
        lb.record(1, 10_000, 1.0);
        let caps = lb.capacities();
        assert!(caps[0] > 1.9 * caps[1]);
        let assignment = lb.propose_assignment(30);
        assert!(assignment.count(0) > assignment.count(1));
    }

    #[test]
    fn imbalance_detection() {
        let mut lb = LoadBalancer::new(vec![1.0, 1.0]);
        lb.record(0, 40_000, 1.0);
        lb.record(1, 10_000, 1.0);
        // Balanced plane counts but 4x capacity difference => peer 1 overloaded.
        let even = BlockDecomposition::balanced(20, 2);
        let (over, under) = lb.detect_imbalance(&even, 1.5).expect("imbalance expected");
        assert_eq!(over, 1);
        assert_eq!(under, 0);
        // A capacity-proportional assignment clears the imbalance.
        let balanced = lb.propose_assignment(20);
        assert!(lb.detect_imbalance(&balanced, 1.5).is_none());
    }

    #[test]
    fn throughput_none_without_data() {
        assert!(PeerLoad::default().throughput().is_none());
    }
}
