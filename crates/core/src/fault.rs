//! Fault tolerance (paper architecture component 6 — listed but "not yet
//! developed" in the paper's implementation; implemented here as an
//! extension).
//!
//! Failures are detected by the topology manager's missed-ping rule; this
//! module decides what to do with the failed peer's sub-task: reassign it to
//! a spare peer, restarting from the most recent checkpoint of that peer's
//! block state. Asynchronous iterations tolerate the resulting staleness (the
//! paper notes asynchronous schemes are fault tolerant "in some sense" since
//! they allow message loss); synchronous runs must roll every peer back to
//! the checkpointed iteration.

use netsim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A checkpoint of one peer's sub-task state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Rank whose state is checkpointed.
    pub rank: usize,
    /// Relaxation count at the checkpoint.
    pub iteration: u64,
    /// Serialized task state (same format as `IterativeTask::result`).
    pub state: Vec<u8>,
}

/// Recovery action decided after a failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Restart the rank's sub-task on a spare peer from the given checkpoint
    /// iteration (0 = from the initial iterate).
    Reassign {
        /// Rank to restart.
        rank: usize,
        /// Peer that takes the work over.
        replacement: NodeId,
        /// Iteration to resume from.
        from_iteration: u64,
    },
    /// No spare peer is available: the computation must be paused until one
    /// joins.
    Pause {
        /// Rank left without an owner.
        rank: usize,
    },
}

/// Tracks checkpoints and proposes recovery plans.
#[derive(Debug, Clone, Default)]
pub struct FaultManager {
    checkpoints: BTreeMap<usize, Checkpoint>,
    spares: Vec<NodeId>,
}

impl FaultManager {
    /// Create a fault manager with an initial pool of spare peers.
    pub fn new(spares: Vec<NodeId>) -> Self {
        Self {
            checkpoints: BTreeMap::new(),
            spares,
        }
    }

    /// Record (replace) the checkpoint of a rank.
    pub fn store_checkpoint(&mut self, checkpoint: Checkpoint) {
        self.checkpoints.insert(checkpoint.rank, checkpoint);
    }

    /// Latest checkpoint of a rank.
    pub fn checkpoint(&self, rank: usize) -> Option<&Checkpoint> {
        self.checkpoints.get(&rank)
    }

    /// Add a spare peer to the pool.
    pub fn add_spare(&mut self, peer: NodeId) {
        self.spares.push(peer);
    }

    /// Number of available spare peers.
    pub fn spare_count(&self) -> usize {
        self.spares.len()
    }

    /// A peer owning `rank` failed: decide the recovery action.
    pub fn on_failure(&mut self, rank: usize) -> RecoveryAction {
        match self.spares.pop() {
            Some(replacement) => RecoveryAction::Reassign {
                rank,
                replacement,
                from_iteration: self
                    .checkpoints
                    .get(&rank)
                    .map(|c| c.iteration)
                    .unwrap_or(0),
            },
            None => RecoveryAction::Pause { rank },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reassignment_uses_latest_checkpoint_and_consumes_a_spare() {
        let mut fm = FaultManager::new(vec![NodeId(10), NodeId(11)]);
        fm.store_checkpoint(Checkpoint {
            rank: 2,
            iteration: 150,
            state: vec![1, 2, 3],
        });
        fm.store_checkpoint(Checkpoint {
            rank: 2,
            iteration: 300,
            state: vec![4, 5, 6],
        });
        assert_eq!(fm.checkpoint(2).unwrap().iteration, 300);
        let action = fm.on_failure(2);
        assert_eq!(
            action,
            RecoveryAction::Reassign {
                rank: 2,
                replacement: NodeId(11),
                from_iteration: 300
            }
        );
        assert_eq!(fm.spare_count(), 1);
    }

    #[test]
    fn failure_without_checkpoint_restarts_from_zero() {
        let mut fm = FaultManager::new(vec![NodeId(9)]);
        match fm.on_failure(0) {
            RecoveryAction::Reassign { from_iteration, .. } => assert_eq!(from_iteration, 0),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn failure_without_spares_pauses() {
        let mut fm = FaultManager::new(vec![]);
        assert_eq!(fm.on_failure(4), RecoveryAction::Pause { rank: 4 });
        fm.add_spare(NodeId(3));
        assert!(matches!(fm.on_failure(4), RecoveryAction::Reassign { .. }));
    }
}
