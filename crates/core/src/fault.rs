//! Fault tolerance (paper architecture component 6 — listed but "not yet
//! developed" in the paper's implementation; implemented here as an
//! extension).
//!
//! Failures are detected by the topology manager's missed-ping rule (or, on
//! the deterministic backends, scheduled by a seeded
//! [`crate::churn::ChurnPlan`]); this module decides what to do with the
//! failed peer's sub-task: reassign it to a spare peer, restarting from the
//! most recent checkpoint of that peer's block state. Asynchronous
//! iterations tolerate the resulting staleness (the paper notes asynchronous
//! schemes are fault tolerant "in some sense" since they allow message
//! loss); synchronous runs must roll every peer back to the checkpointed
//! iteration.
//!
//! Since the volatility subsystem (PR 4), this store is *live*: every
//! [`crate::runtime::engine::PeerEngine`] periodically deposits checkpoints
//! here through the shared [`crate::churn::VolatilityState`], and the
//! recovery path consumes [`FaultManager::on_failure`] when a peer dies.
//! Checkpoints keep a short per-rank history (not just the latest) so a
//! synchronous rollback can land every peer on one common iteration.

use netsim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Checkpoints kept per rank; older ones are pruned. Synchronous peers stay
/// within one iteration of each other, so a handful of interval-aligned
/// checkpoints always covers the rollback target.
const CHECKPOINT_HISTORY: usize = 8;

/// A checkpoint of one peer's sub-task state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Rank whose state is checkpointed.
    pub rank: usize,
    /// Relaxation count at the checkpoint.
    pub iteration: u64,
    /// Serialized task state (same format as
    /// `IterativeTask::checkpoint_state`, which defaults to
    /// `IterativeTask::result`).
    pub state: Vec<u8>,
}

impl Checkpoint {
    /// Serialize to a compact little-endian byte representation (the format
    /// a deployment would ship to a checkpoint server):
    /// rank (u32), iteration (u64), state length (u32), state bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.state.len());
        out.extend_from_slice(&(self.rank as u32).to_le_bytes());
        out.extend_from_slice(&self.iteration.to_le_bytes());
        out.extend_from_slice(&(self.state.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.state);
        out
    }

    /// Decode from bytes produced by [`Checkpoint::encode`]; `None` for
    /// truncated or garbage input (the advertised state length must match
    /// the buffer exactly).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 {
            return None;
        }
        let rank = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let iteration = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
        let len = u32::from_le_bytes(bytes[12..16].try_into().ok()?) as usize;
        if bytes.len() != 16 + len {
            return None;
        }
        Some(Self {
            rank,
            iteration,
            state: bytes[16..].to_vec(),
        })
    }
}

/// Recovery action decided after a failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Restart the rank's sub-task on a spare peer from the given checkpoint
    /// iteration (0 = from the initial iterate).
    Reassign {
        /// Rank to restart.
        rank: usize,
        /// Peer that takes the work over.
        replacement: NodeId,
        /// Iteration to resume from.
        from_iteration: u64,
    },
    /// No spare peer is available: the computation must be paused until one
    /// joins.
    Pause {
        /// Rank left without an owner.
        rank: usize,
    },
}

/// Tracks checkpoints and proposes recovery plans.
#[derive(Debug, Clone, Default)]
pub struct FaultManager {
    /// Per-rank checkpoint history, keyed by iteration (latest last).
    checkpoints: BTreeMap<usize, BTreeMap<u64, Checkpoint>>,
    spares: Vec<NodeId>,
}

impl FaultManager {
    /// Create a fault manager with an initial pool of spare peers.
    pub fn new(spares: Vec<NodeId>) -> Self {
        Self {
            checkpoints: BTreeMap::new(),
            spares,
        }
    }

    /// Record the checkpoint of a rank (replacing any previous checkpoint at
    /// the same iteration; older history beyond a small window is pruned).
    pub fn store_checkpoint(&mut self, checkpoint: Checkpoint) {
        let history = self.checkpoints.entry(checkpoint.rank).or_default();
        history.insert(checkpoint.iteration, checkpoint);
        while history.len() > CHECKPOINT_HISTORY {
            let oldest = *history.keys().next().expect("non-empty");
            history.remove(&oldest);
        }
    }

    /// Latest checkpoint of a rank.
    pub fn checkpoint(&self, rank: usize) -> Option<&Checkpoint> {
        self.checkpoints
            .get(&rank)
            .and_then(|h| h.values().next_back())
    }

    /// Most recent checkpoint of `rank` at or before `iteration` (the
    /// rollback lookup: every peer checkpoints on the same interval grid, so
    /// a common target iteration exists for all of them).
    pub fn checkpoint_at_or_before(&self, rank: usize, iteration: u64) -> Option<&Checkpoint> {
        self.checkpoints
            .get(&rank)
            .and_then(|h| h.range(..=iteration).next_back())
            .map(|(_, c)| c)
    }

    /// Add a spare peer to the pool.
    pub fn add_spare(&mut self, peer: NodeId) {
        self.spares.push(peer);
    }

    /// Number of available spare peers.
    pub fn spare_count(&self) -> usize {
        self.spares.len()
    }

    /// A peer owning `rank` failed: decide the recovery action.
    pub fn on_failure(&mut self, rank: usize) -> RecoveryAction {
        match self.spares.pop() {
            Some(replacement) => RecoveryAction::Reassign {
                rank,
                replacement,
                from_iteration: self.checkpoint(rank).map(|c| c.iteration).unwrap_or(0),
            },
            None => RecoveryAction::Pause { rank },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reassignment_uses_latest_checkpoint_and_consumes_a_spare() {
        let mut fm = FaultManager::new(vec![NodeId(10), NodeId(11)]);
        fm.store_checkpoint(Checkpoint {
            rank: 2,
            iteration: 150,
            state: vec![1, 2, 3],
        });
        fm.store_checkpoint(Checkpoint {
            rank: 2,
            iteration: 300,
            state: vec![4, 5, 6],
        });
        assert_eq!(fm.checkpoint(2).unwrap().iteration, 300);
        let action = fm.on_failure(2);
        assert_eq!(
            action,
            RecoveryAction::Reassign {
                rank: 2,
                replacement: NodeId(11),
                from_iteration: 300
            }
        );
        assert_eq!(fm.spare_count(), 1);
    }

    #[test]
    fn failure_without_checkpoint_restarts_from_zero() {
        let mut fm = FaultManager::new(vec![NodeId(9)]);
        match fm.on_failure(0) {
            RecoveryAction::Reassign { from_iteration, .. } => assert_eq!(from_iteration, 0),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn failure_without_spares_pauses() {
        let mut fm = FaultManager::new(vec![]);
        assert_eq!(fm.on_failure(4), RecoveryAction::Pause { rank: 4 });
        fm.add_spare(NodeId(3));
        assert!(matches!(fm.on_failure(4), RecoveryAction::Reassign { .. }));
    }

    #[test]
    fn history_serves_rollback_lookups_and_is_pruned() {
        let mut fm = FaultManager::new(vec![]);
        for iteration in (0..=200).step_by(20) {
            fm.store_checkpoint(Checkpoint {
                rank: 1,
                iteration,
                state: vec![iteration as u8],
            });
        }
        // Latest wins for plain lookups; at-or-before serves rollbacks.
        assert_eq!(fm.checkpoint(1).unwrap().iteration, 200);
        assert_eq!(fm.checkpoint_at_or_before(1, 165).unwrap().iteration, 160);
        assert_eq!(fm.checkpoint_at_or_before(1, 160).unwrap().iteration, 160);
        // Pruned: the oldest entries are gone, the window stays bounded.
        assert!(fm.checkpoint_at_or_before(1, 0).is_none());
        assert!(fm.checkpoint_at_or_before(1, 59).is_none());
        assert_eq!(fm.checkpoint_at_or_before(1, 60).unwrap().iteration, 60);
    }

    proptest! {
        /// Round trip: any checkpoint survives encode → decode bit-exactly,
        /// and every strict prefix of the encoding is rejected (the length
        /// field pins the exact size, matching the `UpdateMsg` proptests).
        #[test]
        fn checkpoint_encode_decode_round_trips(
            rank in 0usize..1024,
            iteration in proptest::any::<u64>(),
            state in proptest::collection::vec(proptest::any::<u8>(), 0..96),
        ) {
            let cp = Checkpoint { rank, iteration, state };
            let bytes = cp.encode();
            prop_assert_eq!(bytes.len(), 16 + cp.state.len());
            prop_assert_eq!(Checkpoint::decode(&bytes), Some(cp));
            for cut in 0..bytes.len() {
                prop_assert_eq!(Checkpoint::decode(&bytes[..cut]), None);
            }
        }

        /// Length-mismatch rejection: a header advertising a different state
        /// length than the buffer carries must not decode.
        #[test]
        fn checkpoint_rejects_length_mismatch(
            rank in 0usize..1024,
            iteration in proptest::any::<u64>(),
            state in proptest::collection::vec(proptest::any::<u8>(), 0..32),
            delta in 1u32..64,
        ) {
            let cp = Checkpoint { rank, iteration, state };
            let mut bytes = cp.encode();
            let advertised = (cp.state.len() as u32).saturating_add(delta);
            bytes[12..16].copy_from_slice(&advertised.to_le_bytes());
            prop_assert_eq!(Checkpoint::decode(&bytes), None);
            // Garbage that merely looks long enough is rejected too.
            prop_assert_eq!(Checkpoint::decode(&[0xFF; 15]), None);
        }
    }
}
