//! The discretized obstacle problem.
//!
//! Continuous problem (Section IV of the paper, see also Lions 1969): find
//! `u ≥ ψ` on the unit cube with `u = 0` on the boundary such that
//! `−Δu − f ≥ 0` and `(u − ψ)(−Δu − f) = 0` (complementarity). Discretizing
//! `−Δ` with the 7-point finite-difference stencil and scaling by `h²` gives
//! a fixed-point problem `u = P_K(u − δ(A·u − b))` where
//!
//! * `A` is the M-matrix with diagonal 6 and off-diagonal −1 towards the six
//!   grid neighbours (boundary neighbours contribute 0),
//! * `b = h² f`,
//! * `K = { v : v ≥ ψ }` and `P_K` is the component-wise projection
//!   `max(v, ψ)`.
//!
//! The projected Richardson method iterates that mapping; its convergence for
//! `0 < δ < 2/ρ(A)` follows from the M-matrix / contraction arguments of the
//! paper's references.

use crate::grid::Grid3;
use serde::{Deserialize, Serialize};

/// Effective "minus infinity" obstacle used for unconstrained validation
/// problems.
pub const NO_OBSTACLE: f64 = -1e300;

/// A discretized obstacle problem instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObstacleProblem {
    /// Discretization grid.
    pub grid: Grid3,
    /// Right-hand side `b = h² f`, one entry per unknown.
    pub rhs: Vec<f64>,
    /// Obstacle `ψ`, one entry per unknown (lower bound on the solution).
    pub psi: Vec<f64>,
}

impl ObstacleProblem {
    /// Build a problem from explicit data.
    pub fn new(grid: Grid3, rhs: Vec<f64>, psi: Vec<f64>) -> Self {
        assert_eq!(rhs.len(), grid.len(), "rhs size mismatch");
        assert_eq!(psi.len(), grid.len(), "psi size mismatch");
        Self { grid, rhs, psi }
    }

    /// Number of unknowns.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// Whether the problem has no unknowns, consistently with
    /// [`ObstacleProblem::len`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The Poisson validation problem without an obstacle:
    /// `f(x,y,z) = 3π² sin(πx) sin(πy) sin(πz)` whose exact solution is
    /// `u = sin(πx) sin(πy) sin(πz)`. Used to validate the solver against an
    /// analytic solution (the obstacle is set to −∞, so the projection is
    /// inactive).
    pub fn poisson_validation(n: usize) -> Self {
        let grid = Grid3::new(n);
        let h = grid.h();
        let pi = std::f64::consts::PI;
        let mut rhs = vec![0.0; grid.len()];
        for (i, j, k) in grid.points() {
            let (x, y, z) = (grid.coord(i), grid.coord(j), grid.coord(k));
            let f = 3.0 * pi * pi * (pi * x).sin() * (pi * y).sin() * (pi * z).sin();
            rhs[grid.idx(i, j, k)] = h * h * f;
        }
        let psi = vec![NO_OBSTACLE; grid.len()];
        Self { grid, rhs, psi }
    }

    /// Exact solution of [`ObstacleProblem::poisson_validation`] at every grid
    /// point.
    pub fn poisson_exact(n: usize) -> Vec<f64> {
        let grid = Grid3::new(n);
        let pi = std::f64::consts::PI;
        let mut u = vec![0.0; grid.len()];
        for (i, j, k) in grid.points() {
            let (x, y, z) = (grid.coord(i), grid.coord(j), grid.coord(k));
            u[grid.idx(i, j, k)] = (pi * x).sin() * (pi * y).sin() * (pi * z).sin();
        }
        u
    }

    /// The membrane-over-a-bump obstacle problem used in the paper-style
    /// experiments: zero load (`f = 0`), zero boundary values and a smooth
    /// spherical bump obstacle in the middle of the cube. The solution touches
    /// the obstacle on a contact set and is discrete-harmonic elsewhere.
    pub fn membrane(n: usize) -> Self {
        let grid = Grid3::new(n);
        let mut psi = vec![0.0; grid.len()];
        for (i, j, k) in grid.points() {
            let (x, y, z) = (grid.coord(i), grid.coord(j), grid.coord(k));
            let r2 = (x - 0.5).powi(2) + (y - 0.5).powi(2) + (z - 0.5).powi(2);
            // Bump of height 0.3 and radius ~0.35, negative far from the centre
            // so the zero boundary condition is compatible with u >= psi.
            psi[grid.idx(i, j, k)] = 0.3 - 2.5 * r2;
        }
        let rhs = vec![0.0; grid.len()];
        Self { grid, rhs, psi }
    }

    /// A qualitative stand-in for the options-pricing obstacle problems the
    /// paper cites as an application domain: the obstacle is a piecewise
    /// linear "payoff"-like ridge and a sink term pulls the solution down, so
    /// both the contact set and the free region are non-trivial.
    pub fn financial(n: usize) -> Self {
        let grid = Grid3::new(n);
        let h = grid.h();
        let mut psi = vec![0.0; grid.len()];
        let mut rhs = vec![0.0; grid.len()];
        for (i, j, k) in grid.points() {
            let (x, y, z) = (grid.coord(i), grid.coord(j), grid.coord(k));
            // Payoff-like obstacle: positive near the "strike" plane x = 0.5,
            // tapering towards the boundary so psi <= 0 there.
            let payoff = 0.25 - (x - 0.5).abs();
            let taper = (y * (1.0 - y) * z * (1.0 - z)) * 4.0;
            psi[grid.idx(i, j, k)] = payoff * taper;
            // Constant sink pulling the solution towards zero.
            rhs[grid.idx(i, j, k)] = -2.0 * h * h;
        }
        Self { grid, rhs, psi }
    }

    /// Apply the operator `A` (7-point stencil, diagonal 6, off-diagonal −1)
    /// to `v`, writing into `out`.
    pub fn apply_a(&self, v: &[f64], out: &mut [f64]) {
        let n = self.grid.n;
        assert_eq!(v.len(), self.len());
        assert_eq!(out.len(), self.len());
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let idx = self.grid.idx(i, j, k);
                    let mut acc = 6.0 * v[idx];
                    if i > 0 {
                        acc -= v[idx - 1];
                    }
                    if i + 1 < n {
                        acc -= v[idx + 1];
                    }
                    if j > 0 {
                        acc -= v[idx - n];
                    }
                    if j + 1 < n {
                        acc -= v[idx + n];
                    }
                    if k > 0 {
                        acc -= v[idx - n * n];
                    }
                    if k + 1 < n {
                        acc -= v[idx + n * n];
                    }
                    out[idx] = acc;
                }
            }
        }
    }

    /// Component-wise projection onto `K = { v ≥ ψ }`, in place.
    pub fn project(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.len());
        for (vi, psi) in v.iter_mut().zip(self.psi.iter()) {
            if *vi < *psi {
                *vi = *psi;
            }
        }
    }

    /// The relaxation parameter used throughout the reproduction:
    /// `δ = 2 / (λ_min + λ_max) = 1/6` for the scaled 7-point Laplacian
    /// (λ_min + λ_max = 12 exactly for every `n`), which is the optimal
    /// Richardson parameter and satisfies the `0 < δ < 2/ρ(A)` convergence
    /// condition.
    pub fn optimal_delta(&self) -> f64 {
        1.0 / 6.0
    }

    /// Largest admissible relaxation parameter `2 / λ_max` for this grid.
    pub fn max_delta(&self) -> f64 {
        let h = self.grid.h();
        let lambda_max = 6.0 + 6.0 * (std::f64::consts::PI * h).cos();
        2.0 / lambda_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_a_matches_dense_stencil_on_small_grid() {
        let p = ObstacleProblem::poisson_validation(3);
        // A applied to the constant vector 1: centre point has 6 - 6 = 0,
        // corner points have 6 - 3 = 3, edge-centre 6 - 4 = 2, face-centre 6 - 5 = 1.
        let v = vec![1.0; p.len()];
        let mut out = vec![0.0; p.len()];
        p.apply_a(&v, &mut out);
        let g = p.grid;
        assert_eq!(out[g.idx(1, 1, 1)], 0.0);
        assert_eq!(out[g.idx(0, 0, 0)], 3.0);
        assert_eq!(out[g.idx(1, 0, 0)], 2.0);
        assert_eq!(out[g.idx(1, 1, 0)], 1.0);
    }

    #[test]
    fn operator_is_symmetric_positive_definite_sampled() {
        let p = ObstacleProblem::membrane(4);
        let len = p.len();
        // <Av, w> == <v, Aw> for a few pseudo-random vectors, and <Av, v> > 0.
        let mk = |seed: u64| -> Vec<f64> {
            let mut state = seed;
            (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 33) as f64 / 2f64.powi(31)) - 1.0
                })
                .collect()
        };
        let v = mk(1);
        let w = mk(2);
        let mut av = vec![0.0; len];
        let mut aw = vec![0.0; len];
        p.apply_a(&v, &mut av);
        p.apply_a(&w, &mut aw);
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        assert!((dot(&av, &w) - dot(&v, &aw)).abs() < 1e-9);
        assert!(dot(&av, &v) > 0.0);
    }

    #[test]
    fn projection_enforces_obstacle_and_is_idempotent() {
        let p = ObstacleProblem::membrane(5);
        let mut v = vec![-1.0; p.len()];
        p.project(&mut v);
        for (vi, psi) in v.iter().zip(p.psi.iter()) {
            assert!(*vi >= *psi);
        }
        let snapshot = v.clone();
        p.project(&mut v);
        assert_eq!(v, snapshot, "projection must be idempotent");
    }

    #[test]
    fn delta_is_within_the_convergence_range() {
        let p = ObstacleProblem::membrane(8);
        assert!(p.optimal_delta() > 0.0);
        assert!(p.optimal_delta() < p.max_delta());
    }

    #[test]
    fn membrane_obstacle_is_positive_in_the_middle_negative_near_boundary() {
        let p = ObstacleProblem::membrane(9);
        let g = p.grid;
        let mid = g.n / 2;
        assert!(p.psi[g.idx(mid, mid, mid)] > 0.0);
        assert!(p.psi[g.idx(0, 0, 0)] < 0.0);
    }

    #[test]
    fn financial_problem_has_nontrivial_obstacle_and_sink() {
        let p = ObstacleProblem::financial(8);
        assert!(p.psi.iter().any(|&x| x > 0.0));
        assert!(p.rhs.iter().all(|&x| x < 0.0));
    }
}
