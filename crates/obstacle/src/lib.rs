//! `obstacle` — the numerical application of the paper: the 3-D obstacle
//! problem and its solution by the projected Richardson method.
//!
//! The obstacle problem (Section IV) arises in mechanics and financial
//! mathematics (options pricing). Its discretization yields a fixed-point
//! problem `u = P_K(u − δ(A·u − b))` on `n³` unknowns; the iterate vector is
//! decomposed into `n` sub-blocks of `n²` points (z-planes) distributed over
//! `α ≤ n` peers.
//!
//! * [`ObstacleProblem`] — grid, operator `A`, right-hand side, obstacle and
//!   projection, with three built-in instances (analytic Poisson validation,
//!   membrane-over-bump, options-pricing-like).
//! * [`solve_sequential`] — the single-peer baseline solver.
//! * [`NodeState`] / [`solve_block_synchronous`] — the per-peer block state
//!   used by the distributed runtimes and the sequential emulation of the
//!   synchronous scheme.
//! * [`GlobalConvergence`] — coordinator-side distributed convergence test.

#![warn(missing_docs)]

pub mod block;
pub mod convergence;
pub mod grid;
pub mod problem;
pub mod richardson;

pub use block::{solve_block_synchronous, NodeState};
pub use convergence::{l2_norm, sup_norm, sup_norm_diff, ConvergenceCriterion, GlobalConvergence};
pub use grid::{BlockDecomposition, Grid3};
pub use problem::{ObstacleProblem, NO_OBSTACLE};
pub use richardson::{
    fixed_point_residual, initial_iterate, solve_sequential, sweep, RichardsonConfig, SolveResult,
};
