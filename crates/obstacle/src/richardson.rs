//! The sequential projected Richardson method.
//!
//! `u^{p+1} = P_K( u^p − δ (A·u^p − b) )` iterated from `u⁰ = P_K(0)` until
//! the sup-norm of the successive difference falls below the tolerance.
//! This is the reference (baseline) solver: the distributed synchronous
//! scheme must reproduce exactly the same iterates, and speedups in the
//! experiments are measured against this single-peer execution.

use crate::convergence::{sup_norm_diff, ConvergenceCriterion};
use crate::problem::ObstacleProblem;
use serde::{Deserialize, Serialize};

/// Configuration of the Richardson iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RichardsonConfig {
    /// Relaxation parameter δ; `None` uses the problem's optimal value (1/6).
    pub delta: Option<f64>,
    /// Stopping tolerance on the sup-norm of the successive difference.
    pub tolerance: f64,
    /// Hard cap on the number of relaxations.
    pub max_iterations: usize,
}

impl Default for RichardsonConfig {
    fn default() -> Self {
        Self {
            delta: None,
            tolerance: 1e-6,
            max_iterations: 200_000,
        }
    }
}

/// Result of a sequential solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveResult {
    /// Final iterate.
    pub u: Vec<f64>,
    /// Number of relaxations (full sweeps) performed.
    pub iterations: usize,
    /// Whether the tolerance was reached within the iteration cap.
    pub converged: bool,
    /// Final successive-difference sup-norm.
    pub final_diff: f64,
}

/// The initial iterate `u⁰ = P_K(0)` used by every solver in this crate.
pub fn initial_iterate(problem: &ObstacleProblem) -> Vec<f64> {
    let mut u = vec![0.0; problem.len()];
    problem.project(&mut u);
    u
}

/// One full projected Richardson sweep: writes `P_K(u − δ(Au − b))` into
/// `next` and returns the sup-norm of `next − u`.
pub fn sweep(problem: &ObstacleProblem, u: &[f64], next: &mut [f64], delta: f64) -> f64 {
    problem.apply_a(u, next);
    let mut max_diff = 0.0f64;
    for idx in 0..u.len() {
        let candidate = u[idx] - delta * (next[idx] - problem.rhs[idx]);
        let projected = candidate.max(problem.psi[idx]);
        max_diff = max_diff.max((projected - u[idx]).abs());
        next[idx] = projected;
    }
    max_diff
}

/// Solve the obstacle problem with the sequential projected Richardson
/// method.
pub fn solve_sequential(problem: &ObstacleProblem, config: RichardsonConfig) -> SolveResult {
    let delta = config.delta.unwrap_or_else(|| problem.optimal_delta());
    assert!(
        delta > 0.0 && delta < problem.max_delta() + 1e-12,
        "delta {delta} outside the convergence range (0, {})",
        problem.max_delta()
    );
    let criterion = ConvergenceCriterion::new(config.tolerance);
    let mut u = initial_iterate(problem);
    let mut next = vec![0.0; problem.len()];
    let mut iterations = 0;
    let mut diff = f64::INFINITY;
    while iterations < config.max_iterations {
        diff = sweep(problem, &u, &mut next, delta);
        std::mem::swap(&mut u, &mut next);
        iterations += 1;
        if criterion.is_satisfied(diff) {
            return SolveResult {
                u,
                iterations,
                converged: true,
                final_diff: diff,
            };
        }
    }
    SolveResult {
        u,
        iterations,
        converged: false,
        final_diff: diff,
    }
}

/// Fixed-point residual `‖u − P_K(u − δ(Au − b))‖_∞`: zero exactly at the
/// solution of the obstacle problem.
pub fn fixed_point_residual(problem: &ObstacleProblem, u: &[f64], delta: f64) -> f64 {
    let mut next = vec![0.0; problem.len()];
    sweep(problem, u, &mut next, delta);
    sup_norm_diff(u, &next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::sup_norm_diff;

    #[test]
    fn converges_to_analytic_poisson_solution() {
        let n = 12;
        let problem = ObstacleProblem::poisson_validation(n);
        let result = solve_sequential(
            &problem,
            RichardsonConfig {
                tolerance: 1e-8,
                ..Default::default()
            },
        );
        assert!(result.converged);
        let exact = ObstacleProblem::poisson_exact(n);
        let err = sup_norm_diff(&result.u, &exact);
        // Second-order discretization error: c * h^2 with c ~ exact-solution
        // fourth derivatives; at n = 12 expect err well below 0.01.
        assert!(err < 0.01, "discretization error too large: {err}");
    }

    #[test]
    fn discretization_error_decreases_with_refinement() {
        let err_at = |n: usize| {
            let problem = ObstacleProblem::poisson_validation(n);
            let result = solve_sequential(
                &problem,
                RichardsonConfig {
                    tolerance: 1e-9,
                    ..Default::default()
                },
            );
            sup_norm_diff(&result.u, &ObstacleProblem::poisson_exact(n))
        };
        let coarse = err_at(6);
        let fine = err_at(12);
        assert!(
            fine < coarse,
            "refinement must reduce the error ({coarse} -> {fine})"
        );
    }

    #[test]
    fn obstacle_solution_respects_constraint_and_complementarity() {
        let problem = ObstacleProblem::membrane(10);
        let result = solve_sequential(
            &problem,
            RichardsonConfig {
                tolerance: 1e-8,
                ..Default::default()
            },
        );
        assert!(result.converged);
        let u = &result.u;
        // Feasibility: u >= psi (up to the solver tolerance).
        for (ui, psi) in u.iter().zip(problem.psi.iter()) {
            assert!(*ui >= *psi - 1e-7);
        }
        // Complementarity (discrete): where u > psi clearly, the residual
        // (Au - b) must be ~0; where u = psi it must be >= 0 (within a loose
        // numerical margin scaled by the tolerance).
        let mut au = vec![0.0; problem.len()];
        problem.apply_a(u, &mut au);
        for idx in 0..problem.len() {
            let slack = u[idx] - problem.psi[idx];
            let residual = au[idx] - problem.rhs[idx];
            if slack > 1e-4 {
                assert!(
                    residual.abs() < 1e-3,
                    "free region must satisfy the equation (idx {idx}: r={residual}, slack={slack})"
                );
            } else {
                assert!(
                    residual > -1e-3,
                    "contact region must have non-negative residual (idx {idx}: r={residual})"
                );
            }
        }
    }

    #[test]
    fn iteration_cap_is_honoured() {
        let problem = ObstacleProblem::membrane(8);
        let result = solve_sequential(
            &problem,
            RichardsonConfig {
                tolerance: 1e-14,
                max_iterations: 5,
                ..Default::default()
            },
        );
        assert!(!result.converged);
        assert_eq!(result.iterations, 5);
    }

    #[test]
    fn fixed_point_residual_vanishes_at_the_solution() {
        let problem = ObstacleProblem::membrane(8);
        let result = solve_sequential(
            &problem,
            RichardsonConfig {
                tolerance: 1e-10,
                ..Default::default()
            },
        );
        let delta = problem.optimal_delta();
        assert!(fixed_point_residual(&problem, &result.u, delta) < 1e-9);
        let u0 = initial_iterate(&problem);
        assert!(fixed_point_residual(&problem, &u0, delta) > 1e-3);
    }

    #[test]
    #[should_panic(expected = "outside the convergence range")]
    fn divergent_delta_rejected() {
        let problem = ObstacleProblem::membrane(8);
        let _ = solve_sequential(
            &problem,
            RichardsonConfig {
                delta: Some(1.0),
                ..Default::default()
            },
        );
    }
}
