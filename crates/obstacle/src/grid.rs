//! The 3-D discretization grid and its block decomposition.
//!
//! The obstacle problem is discretized on the unit cube with `n` interior
//! points per dimension (`n³` unknowns, homogeneous Dirichlet boundary).
//! Following the paper, the iterate vector is decomposed into `n` sub-blocks
//! of `n²` points — the z-planes of the grid — and contiguous ranges of
//! planes are assigned to the `α ≤ n` peers.

use serde::{Deserialize, Serialize};

/// The discretization grid: `n³` interior points of the unit cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid3 {
    /// Number of interior points per dimension.
    pub n: usize,
}

impl Grid3 {
    /// Create a grid with `n` interior points per dimension.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "grid needs at least 2 points per dimension");
        Self { n }
    }

    /// Mesh spacing `h = 1 / (n + 1)`.
    pub fn h(&self) -> f64 {
        1.0 / (self.n as f64 + 1.0)
    }

    /// Total number of unknowns (`n³`).
    pub fn len(&self) -> usize {
        self.n * self.n * self.n
    }

    /// Whether the grid has no unknowns, consistently with
    /// [`Grid3::len`] (only possible for the degenerate `n = 0` grid).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of points in one z-plane (`n²`), i.e. the sub-block size of the
    /// paper's decomposition.
    pub fn plane_len(&self) -> usize {
        self.n * self.n
    }

    /// Linear index of interior point `(i, j, k)` with `0 ≤ i,j,k < n`
    /// (`i` fastest, `k` = z slowest).
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.n && j < self.n && k < self.n);
        i + self.n * (j + self.n * k)
    }

    /// Physical coordinate of interior index `i` along one axis.
    pub fn coord(&self, i: usize) -> f64 {
        (i as f64 + 1.0) * self.h()
    }

    /// Iterate over all `(i, j, k)` triples in index order.
    pub fn points(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |k| (0..n).flat_map(move |j| (0..n).map(move |i| (i, j, k))))
    }
}

/// Assignment of the `n` z-plane sub-blocks to `alpha` peers: peer `r` owns
/// the contiguous plane range `[start(r), end(r))`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockDecomposition {
    n: usize,
    alpha: usize,
    starts: Vec<usize>,
}

impl BlockDecomposition {
    /// Split `n` planes over `alpha` peers as evenly as possible; the first
    /// `n % alpha` peers get one extra plane.
    pub fn balanced(n: usize, alpha: usize) -> Self {
        assert!(alpha >= 1, "need at least one peer");
        assert!(
            alpha <= n,
            "the paper requires alpha <= n (at least one plane per peer)"
        );
        let base = n / alpha;
        let extra = n % alpha;
        let mut starts = Vec::with_capacity(alpha + 1);
        let mut cursor = 0;
        for r in 0..alpha {
            starts.push(cursor);
            cursor += base + usize::from(r < extra);
        }
        starts.push(cursor);
        debug_assert_eq!(cursor, n);
        Self { n, alpha, starts }
    }

    /// Weighted split: peer `r` receives a plane count proportional to
    /// `weights[r]` (used by the load-balancing extension for heterogeneous
    /// peers). Every peer receives at least one plane.
    pub fn weighted(n: usize, weights: &[f64]) -> Self {
        let alpha = weights.len();
        assert!(alpha >= 1 && alpha <= n);
        assert!(weights.iter().all(|w| *w > 0.0), "weights must be positive");
        let total: f64 = weights.iter().sum();
        // Largest-remainder allocation with a floor of one plane per peer.
        let mut counts: Vec<usize> = vec![1; alpha];
        let mut remaining = n - alpha;
        let mut fractional: Vec<(usize, f64)> = Vec::with_capacity(alpha);
        for (r, w) in weights.iter().enumerate() {
            let ideal = (n as f64) * w / total;
            let extra = (ideal - 1.0).max(0.0);
            let whole = extra.floor() as usize;
            let take = whole.min(remaining);
            counts[r] += take;
            remaining -= take;
            fractional.push((r, extra - whole as f64));
        }
        fractional.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let mut i = 0;
        while remaining > 0 {
            counts[fractional[i % alpha].0] += 1;
            remaining -= 1;
            i += 1;
        }
        let mut starts = Vec::with_capacity(alpha + 1);
        let mut cursor = 0;
        for c in &counts {
            starts.push(cursor);
            cursor += c;
        }
        starts.push(cursor);
        debug_assert_eq!(cursor, n);
        Self { n, alpha, starts }
    }

    /// Build a decomposition from explicit per-peer plane counts (live
    /// repartitioning hands these out after recomputing capacity-weighted
    /// shares). Every count must be at least one plane and the counts must
    /// cover all `n` planes.
    pub fn from_counts(n: usize, counts: &[usize]) -> Self {
        let alpha = counts.len();
        assert!(alpha >= 1, "need at least one peer");
        assert!(counts.iter().all(|c| *c >= 1), "every peer owns a plane");
        let mut starts = Vec::with_capacity(alpha + 1);
        let mut cursor = 0;
        for c in counts {
            starts.push(cursor);
            cursor += c;
        }
        starts.push(cursor);
        assert_eq!(cursor, n, "counts must cover all {n} planes");
        Self { n, alpha, starts }
    }

    /// Number of peers.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Number of planes (sub-blocks).
    pub fn planes(&self) -> usize {
        self.n
    }

    /// First plane owned by peer `r` (the paper's `o(k)`).
    pub fn start(&self, r: usize) -> usize {
        self.starts[r]
    }

    /// One past the last plane owned by peer `r` (the paper's `l(k) + 1`).
    pub fn end(&self, r: usize) -> usize {
        self.starts[r + 1]
    }

    /// Number of planes owned by peer `r`.
    pub fn count(&self, r: usize) -> usize {
        self.end(r) - self.start(r)
    }

    /// Peer owning plane `z`.
    pub fn owner_of(&self, z: usize) -> usize {
        assert!(z < self.n);
        // starts is sorted; find the last start <= z.
        match self.starts.binary_search(&z) {
            Ok(r) if r < self.alpha => r,
            Ok(r) => r - 1,
            Err(ins) => ins - 1,
        }
    }

    /// Neighbouring peers of peer `r` in the 1-D plane decomposition (the
    /// peers it exchanges boundary planes with).
    pub fn neighbors(&self, r: usize) -> Vec<usize> {
        let mut v = Vec::new();
        if r > 0 {
            v.push(r - 1);
        }
        if r + 1 < self.alpha {
            v.push(r + 1);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_basics() {
        let g = Grid3::new(4);
        assert_eq!(g.len(), 64);
        assert_eq!(g.plane_len(), 16);
        assert!((g.h() - 0.2).abs() < 1e-12);
        assert_eq!(g.idx(0, 0, 0), 0);
        assert_eq!(g.idx(3, 3, 3), 63);
        assert_eq!(g.idx(1, 2, 3), 1 + 4 * (2 + 4 * 3));
        assert!((g.coord(0) - 0.2).abs() < 1e-12);
        assert_eq!(g.points().count(), 64);
    }

    #[test]
    fn balanced_decomposition_covers_all_planes() {
        for n in [5usize, 8, 96, 144] {
            for alpha in [1usize, 2, 3, 4, 5] {
                if alpha > n {
                    continue;
                }
                let d = BlockDecomposition::balanced(n, alpha);
                let mut total = 0;
                for r in 0..alpha {
                    assert!(d.count(r) >= 1);
                    total += d.count(r);
                    if r > 0 {
                        assert_eq!(d.start(r), d.end(r - 1));
                    }
                }
                assert_eq!(total, n);
                // Balance: counts differ by at most 1.
                let max = (0..alpha).map(|r| d.count(r)).max().unwrap();
                let min = (0..alpha).map(|r| d.count(r)).min().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn paper_configuration_96_over_24() {
        let d = BlockDecomposition::balanced(96, 24);
        for r in 0..24 {
            assert_eq!(d.count(r), 4);
        }
        assert_eq!(d.start(0), 0);
        assert_eq!(d.end(23), 96);
    }

    #[test]
    fn owner_of_is_consistent_with_ranges() {
        let d = BlockDecomposition::balanced(17, 5);
        for z in 0..17 {
            let r = d.owner_of(z);
            assert!(d.start(r) <= z && z < d.end(r));
        }
    }

    #[test]
    fn neighbors_are_the_adjacent_peers() {
        let d = BlockDecomposition::balanced(10, 4);
        assert_eq!(d.neighbors(0), vec![1]);
        assert_eq!(d.neighbors(1), vec![0, 2]);
        assert_eq!(d.neighbors(3), vec![2]);
    }

    #[test]
    fn weighted_decomposition_respects_proportions() {
        let d = BlockDecomposition::weighted(100, &[1.0, 3.0]);
        assert_eq!(d.count(0) + d.count(1), 100);
        assert!(
            d.count(1) > d.count(0) * 2,
            "3x weight should get ~3x planes"
        );
        // Every peer gets at least one plane even with tiny weights.
        let d2 = BlockDecomposition::weighted(4, &[1e-6, 1.0, 1.0, 1.0]);
        assert!(d2.count(0) >= 1);
    }

    #[test]
    #[should_panic(expected = "alpha <= n")]
    fn too_many_peers_rejected() {
        let _ = BlockDecomposition::balanced(4, 5);
    }
}
