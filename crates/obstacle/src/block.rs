//! Per-peer block state for the distributed projected Richardson method.
//!
//! Each peer owns a contiguous range of z-planes (sub-blocks of `n²` points,
//! Section IV.B / Figure 4 of the paper). A relaxation sweep updates every
//! owned plane from the previous iterate (Jacobi ordering, so the synchronous
//! distributed scheme reproduces the sequential iterates exactly) using ghost
//! copies of the neighbouring peers' boundary planes. After a sweep the peer
//! sends its first plane to the peer below and its last plane to the peer
//! above.

use crate::grid::BlockDecomposition;
use crate::problem::ObstacleProblem;
use crate::richardson::{initial_iterate, RichardsonConfig, SolveResult};
use serde::{Deserialize, Serialize};

/// The state a peer keeps for its share of the iterate vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeState {
    n: usize,
    z_start: usize,
    z_end: usize,
    u: Vec<f64>,
    next: Vec<f64>,
    ghost_lo: Vec<f64>,
    ghost_hi: Vec<f64>,
    relaxations: u64,
}

impl NodeState {
    /// Create the state of peer `r` under `decomp`, initialised (including
    /// ghost planes) from the canonical initial iterate `P_K(0)`.
    pub fn new(problem: &ObstacleProblem, decomp: &BlockDecomposition, r: usize) -> Self {
        Self::from_global(problem, decomp, r, &initial_iterate(problem), 0)
    }

    /// Create the state of peer `r` under `decomp`, initialised (owned
    /// planes *and* ghost planes) from an explicit global iterate, with the
    /// relaxation counter set to `relaxations`. Live repartitioning uses
    /// this to hand a re-sliced block to a peer mid-run: seeding the ghosts
    /// from the same global vector keeps the next synchronous sweep
    /// identical to the sequential sweep of that iterate, so the re-slice
    /// does not perturb the decomposition-invariant relaxation count.
    pub fn from_global(
        problem: &ObstacleProblem,
        decomp: &BlockDecomposition,
        r: usize,
        full: &[f64],
        relaxations: u64,
    ) -> Self {
        let n = problem.grid.n;
        let plane = problem.grid.plane_len();
        assert_eq!(full.len(), n * plane, "global iterate size mismatch");
        let z_start = decomp.start(r);
        let z_end = decomp.end(r);
        let u = full[z_start * plane..z_end * plane].to_vec();
        let ghost_lo = if z_start > 0 {
            full[(z_start - 1) * plane..z_start * plane].to_vec()
        } else {
            Vec::new()
        };
        let ghost_hi = if z_end < n {
            full[z_end * plane..(z_end + 1) * plane].to_vec()
        } else {
            Vec::new()
        };
        let len = u.len();
        Self {
            n,
            z_start,
            z_end,
            u,
            next: vec![0.0; len],
            ghost_lo,
            ghost_hi,
            relaxations,
        }
    }

    /// First owned plane index (the paper's `o(k)`).
    pub fn z_start(&self) -> usize {
        self.z_start
    }

    /// One past the last owned plane index.
    pub fn z_end(&self) -> usize {
        self.z_end
    }

    /// Number of owned planes.
    pub fn plane_count(&self) -> usize {
        self.z_end - self.z_start
    }

    /// Number of owned unknowns.
    pub fn local_len(&self) -> usize {
        self.u.len()
    }

    /// Number of relaxation sweeps performed by this peer.
    pub fn relaxations(&self) -> u64 {
        self.relaxations
    }

    /// Copy of the first owned plane (sent to the peer below).
    pub fn first_plane(&self) -> Vec<f64> {
        self.u[0..self.n * self.n].to_vec()
    }

    /// Copy of the last owned plane (sent to the peer above).
    pub fn last_plane(&self) -> Vec<f64> {
        let plane = self.n * self.n;
        self.u[self.u.len() - plane..].to_vec()
    }

    /// Install the boundary plane received from the peer below (its last
    /// plane). Returns the sup-norm change with respect to the previous ghost
    /// (used by asynchronous convergence detection).
    pub fn set_ghost_lo(&mut self, plane: &[f64]) -> f64 {
        assert_eq!(plane.len(), self.n * self.n, "ghost plane size mismatch");
        assert!(self.z_start > 0, "peer 0 has no lower neighbour");
        let change = plane
            .iter()
            .zip(self.ghost_lo.iter())
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        self.ghost_lo.clear();
        self.ghost_lo.extend_from_slice(plane);
        change
    }

    /// Install the boundary plane received from the peer above (its first
    /// plane). Returns the sup-norm change with respect to the previous ghost.
    pub fn set_ghost_hi(&mut self, plane: &[f64]) -> f64 {
        assert_eq!(plane.len(), self.n * self.n, "ghost plane size mismatch");
        assert!(self.z_end < self.n, "the last peer has no upper neighbour");
        let change = plane
            .iter()
            .zip(self.ghost_hi.iter())
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        self.ghost_hi.clear();
        self.ghost_hi.extend_from_slice(plane);
        change
    }

    /// Perform one projected Richardson sweep over the owned planes using the
    /// previous iterate and the current ghost planes. Returns the sup-norm of
    /// the local successive difference.
    pub fn sweep(&mut self, problem: &ObstacleProblem, delta: f64) -> f64 {
        let n = self.n;
        let plane = n * n;
        let mut max_diff = 0.0f64;
        for lz in 0..self.plane_count() {
            let z = self.z_start + lz;
            for j in 0..n {
                for i in 0..n {
                    let li = i + n * j + plane * lz;
                    let gi = problem.grid.idx(i, j, z);
                    let center = self.u[li];
                    let mut acc = 6.0 * center;
                    if i > 0 {
                        acc -= self.u[li - 1];
                    }
                    if i + 1 < n {
                        acc -= self.u[li + 1];
                    }
                    if j > 0 {
                        acc -= self.u[li - n];
                    }
                    if j + 1 < n {
                        acc -= self.u[li + n];
                    }
                    // Below in z.
                    if lz > 0 {
                        acc -= self.u[li - plane];
                    } else if z > 0 {
                        acc -= self.ghost_lo[i + n * j];
                    }
                    // Above in z.
                    if lz + 1 < self.plane_count() {
                        acc -= self.u[li + plane];
                    } else if z + 1 < n {
                        acc -= self.ghost_hi[i + n * j];
                    }
                    let candidate = center - delta * (acc - problem.rhs[gi]);
                    let projected = candidate.max(problem.psi[gi]);
                    max_diff = max_diff.max((projected - center).abs());
                    self.next[li] = projected;
                }
            }
        }
        std::mem::swap(&mut self.u, &mut self.next);
        self.relaxations += 1;
        max_diff
    }

    /// Copy the owned planes into their place in a global solution vector.
    pub fn copy_into_global(&self, out: &mut [f64]) {
        let plane = self.n * self.n;
        let start = self.z_start * plane;
        out[start..start + self.u.len()].copy_from_slice(&self.u);
    }

    /// Owned values (planes concatenated in z order).
    pub fn local_values(&self) -> &[f64] {
        &self.u
    }

    /// Overwrite the owned values and the relaxation counter from a
    /// checkpoint (fault-tolerance restore). The ghost planes are left as
    /// they are — a restored peer refreshes them from its neighbours' next
    /// updates, and whatever it currently holds is at least as fresh as what
    /// the checkpoint saw. Returns `false` (and changes nothing) when the
    /// value count does not match this block.
    pub fn restore(&mut self, values: &[f64], relaxations: u64) -> bool {
        if values.len() != self.u.len() {
            return false;
        }
        self.u.copy_from_slice(values);
        self.relaxations = relaxations;
        true
    }
}

/// Sequentially emulate the *synchronous* distributed scheme with `alpha`
/// peers: every iteration, all peers sweep from the same iteration-`p` ghost
/// planes, then exchange boundaries. Produces exactly the same iterates as
/// [`crate::richardson::solve_sequential`]; used to validate the distributed
/// runtime and as a fast harness baseline.
pub fn solve_block_synchronous(
    problem: &ObstacleProblem,
    alpha: usize,
    config: RichardsonConfig,
) -> SolveResult {
    let decomp = BlockDecomposition::balanced(problem.grid.n, alpha);
    let delta = config.delta.unwrap_or_else(|| problem.optimal_delta());
    let mut nodes: Vec<NodeState> = (0..alpha)
        .map(|r| NodeState::new(problem, &decomp, r))
        .collect();
    let mut iterations = 0;
    let mut converged = false;
    let mut diff = f64::INFINITY;
    while iterations < config.max_iterations {
        diff = nodes
            .iter_mut()
            .map(|node| node.sweep(problem, delta))
            .fold(0.0f64, f64::max);
        iterations += 1;
        // Synchronous boundary exchange.
        for r in 0..alpha {
            if r > 0 {
                let plane = nodes[r - 1].last_plane();
                nodes[r].set_ghost_lo(&plane);
            }
            if r + 1 < alpha {
                let plane = nodes[r + 1].first_plane();
                nodes[r].set_ghost_hi(&plane);
            }
        }
        if diff <= config.tolerance {
            converged = true;
            break;
        }
    }
    let mut u = vec![0.0; problem.len()];
    for node in &nodes {
        node.copy_into_global(&mut u);
    }
    SolveResult {
        u,
        iterations,
        converged,
        final_diff: diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::richardson::solve_sequential;

    #[test]
    fn node_state_covers_decomposition() {
        let problem = ObstacleProblem::membrane(8);
        let decomp = BlockDecomposition::balanced(8, 3);
        let nodes: Vec<NodeState> = (0..3)
            .map(|r| NodeState::new(&problem, &decomp, r))
            .collect();
        let total: usize = nodes.iter().map(|s| s.local_len()).sum();
        assert_eq!(total, problem.len());
        assert_eq!(nodes[0].z_start(), 0);
        assert_eq!(nodes[2].z_end(), 8);
        assert_eq!(nodes[1].first_plane().len(), 64);
    }

    #[test]
    fn block_synchronous_matches_sequential_exactly() {
        let problem = ObstacleProblem::membrane(10);
        let config = RichardsonConfig {
            tolerance: 1e-6,
            ..Default::default()
        };
        let reference = solve_sequential(&problem, config);
        for alpha in [1usize, 2, 3, 5, 10] {
            let distributed = solve_block_synchronous(&problem, alpha, config);
            assert_eq!(
                distributed.iterations, reference.iterations,
                "synchronous relaxation count must not depend on the decomposition (alpha={alpha})"
            );
            let max_err = reference
                .u
                .iter()
                .zip(distributed.u.iter())
                .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
            assert!(
                max_err < 1e-12,
                "alpha={alpha}: distributed sync iterates diverged from sequential ({max_err})"
            );
        }
    }

    #[test]
    fn block_synchronous_matches_on_validation_problem_too() {
        let problem = ObstacleProblem::poisson_validation(8);
        let config = RichardsonConfig {
            tolerance: 1e-5,
            ..Default::default()
        };
        let a = solve_sequential(&problem, config);
        let b = solve_block_synchronous(&problem, 4, config);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn stale_ghosts_change_the_iterates_but_not_feasibility() {
        // An "asynchronous-like" emulation: never exchange ghosts. The result
        // differs from the reference but every iterate stays feasible.
        let problem = ObstacleProblem::membrane(6);
        let decomp = BlockDecomposition::balanced(6, 2);
        let mut node = NodeState::new(&problem, &decomp, 0);
        let delta = problem.optimal_delta();
        for _ in 0..50 {
            node.sweep(&problem, delta);
        }
        for (lz, value) in node.local_values().iter().enumerate() {
            let z = node.z_start() + lz / problem.grid.plane_len();
            let within = lz % problem.grid.plane_len();
            let i = within % problem.grid.n;
            let j = within / problem.grid.n;
            let gi = problem.grid.idx(i, j, z);
            assert!(*value >= problem.psi[gi] - 1e-12);
        }
        assert_eq!(node.relaxations(), 50);
    }

    #[test]
    #[should_panic(expected = "ghost plane size mismatch")]
    fn wrong_ghost_size_rejected() {
        let problem = ObstacleProblem::membrane(6);
        let decomp = BlockDecomposition::balanced(6, 2);
        let mut node = NodeState::new(&problem, &decomp, 1);
        node.set_ghost_lo(&[0.0; 3]);
    }
}
