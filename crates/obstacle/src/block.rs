//! Per-peer block state for the distributed projected Richardson method.
//!
//! Each peer owns a contiguous range of z-planes (sub-blocks of `n²` points,
//! Section IV.B / Figure 4 of the paper). A relaxation sweep updates every
//! owned plane from the previous iterate (Jacobi ordering, so the synchronous
//! distributed scheme reproduces the sequential iterates exactly) using ghost
//! copies of the neighbouring peers' boundary planes. After a sweep the peer
//! sends its first plane to the peer below and its last plane to the peer
//! above.

use crate::grid::BlockDecomposition;
use crate::problem::ObstacleProblem;
use crate::richardson::{initial_iterate, RichardsonConfig, SolveResult};
use serde::{Deserialize, Serialize};

/// The state a peer keeps for its share of the iterate vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeState {
    n: usize,
    z_start: usize,
    z_end: usize,
    u: Vec<f64>,
    next: Vec<f64>,
    ghost_lo: Vec<f64>,
    ghost_hi: Vec<f64>,
    relaxations: u64,
    /// All-zero plane standing in for absent neighbours (the homogeneous
    /// Dirichlet boundary) so the blocked kernel never branches per point.
    /// Scratch only — not part of the checkpointed state.
    #[serde(skip, default)]
    zeros: Vec<f64>,
}

impl NodeState {
    /// Create the state of peer `r` under `decomp`, initialised (including
    /// ghost planes) from the canonical initial iterate `P_K(0)`.
    pub fn new(problem: &ObstacleProblem, decomp: &BlockDecomposition, r: usize) -> Self {
        Self::from_global(problem, decomp, r, &initial_iterate(problem), 0)
    }

    /// Create the state of peer `r` under `decomp`, initialised (owned
    /// planes *and* ghost planes) from an explicit global iterate, with the
    /// relaxation counter set to `relaxations`. Live repartitioning uses
    /// this to hand a re-sliced block to a peer mid-run: seeding the ghosts
    /// from the same global vector keeps the next synchronous sweep
    /// identical to the sequential sweep of that iterate, so the re-slice
    /// does not perturb the decomposition-invariant relaxation count.
    pub fn from_global(
        problem: &ObstacleProblem,
        decomp: &BlockDecomposition,
        r: usize,
        full: &[f64],
        relaxations: u64,
    ) -> Self {
        let n = problem.grid.n;
        let plane = problem.grid.plane_len();
        assert_eq!(full.len(), n * plane, "global iterate size mismatch");
        let z_start = decomp.start(r);
        let z_end = decomp.end(r);
        let u = full[z_start * plane..z_end * plane].to_vec();
        let ghost_lo = if z_start > 0 {
            full[(z_start - 1) * plane..z_start * plane].to_vec()
        } else {
            Vec::new()
        };
        let ghost_hi = if z_end < n {
            full[z_end * plane..(z_end + 1) * plane].to_vec()
        } else {
            Vec::new()
        };
        let len = u.len();
        Self {
            n,
            z_start,
            z_end,
            u,
            next: vec![0.0; len],
            ghost_lo,
            ghost_hi,
            relaxations,
            zeros: vec![0.0; plane],
        }
    }

    /// First owned plane index (the paper's `o(k)`).
    pub fn z_start(&self) -> usize {
        self.z_start
    }

    /// One past the last owned plane index.
    pub fn z_end(&self) -> usize {
        self.z_end
    }

    /// Number of owned planes.
    pub fn plane_count(&self) -> usize {
        self.z_end - self.z_start
    }

    /// Number of owned unknowns.
    pub fn local_len(&self) -> usize {
        self.u.len()
    }

    /// Number of relaxation sweeps performed by this peer.
    pub fn relaxations(&self) -> u64 {
        self.relaxations
    }

    /// The first owned plane (sent to the peer below), borrowed straight
    /// from grid storage so the wire path can serialize without copying.
    pub fn first_plane_slice(&self) -> &[f64] {
        &self.u[0..self.n * self.n]
    }

    /// The last owned plane (sent to the peer above), borrowed straight
    /// from grid storage.
    pub fn last_plane_slice(&self) -> &[f64] {
        let plane = self.n * self.n;
        &self.u[self.u.len() - plane..]
    }

    /// Copy of the first owned plane (sent to the peer below).
    pub fn first_plane(&self) -> Vec<f64> {
        self.first_plane_slice().to_vec()
    }

    /// Copy of the last owned plane (sent to the peer above).
    pub fn last_plane(&self) -> Vec<f64> {
        self.last_plane_slice().to_vec()
    }

    /// Install the boundary plane received from the peer below (its last
    /// plane). Returns the sup-norm change with respect to the previous ghost
    /// (used by asynchronous convergence detection).
    pub fn set_ghost_lo(&mut self, plane: &[f64]) -> f64 {
        assert_eq!(plane.len(), self.n * self.n, "ghost plane size mismatch");
        assert!(self.z_start > 0, "peer 0 has no lower neighbour");
        let change = plane
            .iter()
            .zip(self.ghost_lo.iter())
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        self.ghost_lo.clear();
        self.ghost_lo.extend_from_slice(plane);
        change
    }

    /// Install the boundary plane received from the peer above (its first
    /// plane). Returns the sup-norm change with respect to the previous ghost.
    pub fn set_ghost_hi(&mut self, plane: &[f64]) -> f64 {
        assert_eq!(plane.len(), self.n * self.n, "ghost plane size mismatch");
        assert!(self.z_end < self.n, "the last peer has no upper neighbour");
        let change = plane
            .iter()
            .zip(self.ghost_hi.iter())
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        self.ghost_hi.clear();
        self.ghost_hi.extend_from_slice(plane);
        change
    }

    /// Perform one projected Richardson sweep over the owned planes using the
    /// previous iterate and the current ghost planes. Returns the sup-norm of
    /// the local successive difference.
    ///
    /// Blocked form of [`NodeState::sweep_scalar`]: neighbour planes/rows are
    /// resolved once per plane and once per row (absent neighbours map to a
    /// persistent zero plane — the homogeneous Dirichlet boundary — which is
    /// bit-identical to skipping the subtraction, since `x - 0.0 == x` for
    /// every `f64`), so the interior of each contiguous row runs branch-free
    /// and 4-wide unrolled. Produces bit-identical iterates to the scalar
    /// kernel, preserving the decomposition-invariant relaxation counts.
    pub fn sweep(&mut self, problem: &ObstacleProblem, delta: f64) -> f64 {
        let n = self.n;
        let plane = n * n;
        let pc = self.plane_count();
        if self.zeros.len() < plane {
            // Deserialized states arrive without the scratch plane.
            self.zeros.resize(plane, 0.0);
        }
        let mut max_diff = 0.0f64;
        let u = &self.u;
        let next = &mut self.next;
        let zeros = &self.zeros;
        for lz in 0..pc {
            let z = self.z_start + lz;
            let u_plane = &u[lz * plane..(lz + 1) * plane];
            let below: &[f64] = if lz > 0 {
                &u[(lz - 1) * plane..lz * plane]
            } else if z > 0 {
                &self.ghost_lo
            } else {
                &zeros[..plane]
            };
            let above: &[f64] = if lz + 1 < pc {
                &u[(lz + 1) * plane..(lz + 2) * plane]
            } else if z + 1 < n {
                &self.ghost_hi
            } else {
                &zeros[..plane]
            };
            let rhs_plane = &problem.rhs[z * plane..(z + 1) * plane];
            let psi_plane = &problem.psi[z * plane..(z + 1) * plane];
            let next_plane = &mut next[lz * plane..(lz + 1) * plane];
            for j in 0..n {
                let row = &u_plane[j * n..(j + 1) * n];
                let front: &[f64] = if j > 0 {
                    &u_plane[(j - 1) * n..j * n]
                } else {
                    &zeros[..n]
                };
                let back: &[f64] = if j + 1 < n {
                    &u_plane[(j + 1) * n..(j + 2) * n]
                } else {
                    &zeros[..n]
                };
                let d = relax_row(
                    row,
                    front,
                    back,
                    &below[j * n..(j + 1) * n],
                    &above[j * n..(j + 1) * n],
                    &rhs_plane[j * n..(j + 1) * n],
                    &psi_plane[j * n..(j + 1) * n],
                    &mut next_plane[j * n..(j + 1) * n],
                    delta,
                );
                max_diff = max_diff.max(d);
            }
        }
        std::mem::swap(&mut self.u, &mut self.next);
        self.relaxations += 1;
        max_diff
    }

    /// The straightforward per-point sweep the blocked [`NodeState::sweep`]
    /// replaced. Kept as the equivalence reference (the blocked kernel must
    /// be bit-identical to this) and as the scalar side of the kernel bench.
    pub fn sweep_scalar(&mut self, problem: &ObstacleProblem, delta: f64) -> f64 {
        let n = self.n;
        let plane = n * n;
        let mut max_diff = 0.0f64;
        for lz in 0..self.plane_count() {
            let z = self.z_start + lz;
            for j in 0..n {
                for i in 0..n {
                    let li = i + n * j + plane * lz;
                    let gi = problem.grid.idx(i, j, z);
                    let center = self.u[li];
                    let mut acc = 6.0 * center;
                    if i > 0 {
                        acc -= self.u[li - 1];
                    }
                    if i + 1 < n {
                        acc -= self.u[li + 1];
                    }
                    if j > 0 {
                        acc -= self.u[li - n];
                    }
                    if j + 1 < n {
                        acc -= self.u[li + n];
                    }
                    // Below in z.
                    if lz > 0 {
                        acc -= self.u[li - plane];
                    } else if z > 0 {
                        acc -= self.ghost_lo[i + n * j];
                    }
                    // Above in z.
                    if lz + 1 < self.plane_count() {
                        acc -= self.u[li + plane];
                    } else if z + 1 < n {
                        acc -= self.ghost_hi[i + n * j];
                    }
                    let candidate = center - delta * (acc - problem.rhs[gi]);
                    let projected = candidate.max(problem.psi[gi]);
                    max_diff = max_diff.max((projected - center).abs());
                    self.next[li] = projected;
                }
            }
        }
        std::mem::swap(&mut self.u, &mut self.next);
        self.relaxations += 1;
        max_diff
    }

    /// Copy the owned planes into their place in a global solution vector.
    pub fn copy_into_global(&self, out: &mut [f64]) {
        let plane = self.n * self.n;
        let start = self.z_start * plane;
        out[start..start + self.u.len()].copy_from_slice(&self.u);
    }

    /// Owned values (planes concatenated in z order).
    pub fn local_values(&self) -> &[f64] {
        &self.u
    }

    /// Overwrite the owned values and the relaxation counter from a
    /// checkpoint (fault-tolerance restore). The ghost planes are left as
    /// they are — a restored peer refreshes them from its neighbours' next
    /// updates, and whatever it currently holds is at least as fresh as what
    /// the checkpoint saw. Returns `false` (and changes nothing) when the
    /// value count does not match this block.
    pub fn restore(&mut self, values: &[f64], relaxations: u64) -> bool {
        if values.len() != self.u.len() {
            return false;
        }
        self.u.copy_from_slice(values);
        self.relaxations = relaxations;
        true
    }
}

/// One projected Richardson update. The subtraction order (left, right,
/// front, back, below, above) matches the scalar kernel exactly so both
/// kernels produce bit-identical iterates.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn relax_point(
    center: f64,
    left: f64,
    right: f64,
    front: f64,
    back: f64,
    below: f64,
    above: f64,
    rhs: f64,
    psi: f64,
    delta: f64,
) -> f64 {
    let mut acc = 6.0 * center;
    acc -= left;
    acc -= right;
    acc -= front;
    acc -= back;
    acc -= below;
    acc -= above;
    (center - delta * (acc - rhs)).max(psi)
}

/// Relax one contiguous row of `n` points with every neighbour row resolved
/// up front. The `i = 0` and `i = n-1` columns (whose left/right neighbour is
/// the zero boundary) are peeled, so the interior runs branch-free over
/// contiguous slices, 4-wide unrolled. Returns the row's sup-norm successive
/// difference; the `max` reduction is order-insensitive on the non-NaN
/// absolute differences, so the unroll does not perturb it.
#[allow(clippy::too_many_arguments)]
#[inline]
fn relax_row(
    row: &[f64],
    front: &[f64],
    back: &[f64],
    below: &[f64],
    above: &[f64],
    rhs: &[f64],
    psi: &[f64],
    out: &mut [f64],
    delta: f64,
) -> f64 {
    let n = row.len();
    // One bounds proof up front lets the interior loop index freely.
    assert!(
        front.len() == n
            && back.len() == n
            && below.len() == n
            && above.len() == n
            && rhs.len() == n
            && psi.len() == n
            && out.len() == n
    );
    // i = 0: the left neighbour is the boundary.
    let right = if n > 1 { row[1] } else { 0.0 };
    let p = relax_point(
        row[0], 0.0, right, front[0], back[0], below[0], above[0], rhs[0], psi[0], delta,
    );
    let mut diff = (p - row[0]).abs();
    out[0] = p;
    if n == 1 {
        return diff;
    }
    let last = n - 1;
    let mut i = 1usize;
    while i + 4 <= last {
        let p0 = relax_point(
            row[i],
            row[i - 1],
            row[i + 1],
            front[i],
            back[i],
            below[i],
            above[i],
            rhs[i],
            psi[i],
            delta,
        );
        let p1 = relax_point(
            row[i + 1],
            row[i],
            row[i + 2],
            front[i + 1],
            back[i + 1],
            below[i + 1],
            above[i + 1],
            rhs[i + 1],
            psi[i + 1],
            delta,
        );
        let p2 = relax_point(
            row[i + 2],
            row[i + 1],
            row[i + 3],
            front[i + 2],
            back[i + 2],
            below[i + 2],
            above[i + 2],
            rhs[i + 2],
            psi[i + 2],
            delta,
        );
        let p3 = relax_point(
            row[i + 3],
            row[i + 2],
            row[i + 4],
            front[i + 3],
            back[i + 3],
            below[i + 3],
            above[i + 3],
            rhs[i + 3],
            psi[i + 3],
            delta,
        );
        out[i] = p0;
        out[i + 1] = p1;
        out[i + 2] = p2;
        out[i + 3] = p3;
        let d01 = (p0 - row[i]).abs().max((p1 - row[i + 1]).abs());
        let d23 = (p2 - row[i + 2]).abs().max((p3 - row[i + 3]).abs());
        diff = diff.max(d01.max(d23));
        i += 4;
    }
    while i < last {
        let p = relax_point(
            row[i],
            row[i - 1],
            row[i + 1],
            front[i],
            back[i],
            below[i],
            above[i],
            rhs[i],
            psi[i],
            delta,
        );
        diff = diff.max((p - row[i]).abs());
        out[i] = p;
        i += 1;
    }
    // i = n-1: the right neighbour is the boundary.
    let p = relax_point(
        row[last],
        row[last - 1],
        0.0,
        front[last],
        back[last],
        below[last],
        above[last],
        rhs[last],
        psi[last],
        delta,
    );
    diff = diff.max((p - row[last]).abs());
    out[last] = p;
    diff
}

/// Sequentially emulate the *synchronous* distributed scheme with `alpha`
/// peers: every iteration, all peers sweep from the same iteration-`p` ghost
/// planes, then exchange boundaries. Produces exactly the same iterates as
/// [`crate::richardson::solve_sequential`]; used to validate the distributed
/// runtime and as a fast harness baseline.
pub fn solve_block_synchronous(
    problem: &ObstacleProblem,
    alpha: usize,
    config: RichardsonConfig,
) -> SolveResult {
    let decomp = BlockDecomposition::balanced(problem.grid.n, alpha);
    let delta = config.delta.unwrap_or_else(|| problem.optimal_delta());
    let mut nodes: Vec<NodeState> = (0..alpha)
        .map(|r| NodeState::new(problem, &decomp, r))
        .collect();
    let mut iterations = 0;
    let mut converged = false;
    let mut diff = f64::INFINITY;
    while iterations < config.max_iterations {
        diff = nodes
            .iter_mut()
            .map(|node| node.sweep(problem, delta))
            .fold(0.0f64, f64::max);
        iterations += 1;
        // Synchronous boundary exchange.
        for r in 0..alpha {
            if r > 0 {
                let plane = nodes[r - 1].last_plane();
                nodes[r].set_ghost_lo(&plane);
            }
            if r + 1 < alpha {
                let plane = nodes[r + 1].first_plane();
                nodes[r].set_ghost_hi(&plane);
            }
        }
        if diff <= config.tolerance {
            converged = true;
            break;
        }
    }
    let mut u = vec![0.0; problem.len()];
    for node in &nodes {
        node.copy_into_global(&mut u);
    }
    SolveResult {
        u,
        iterations,
        converged,
        final_diff: diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::richardson::solve_sequential;

    #[test]
    fn node_state_covers_decomposition() {
        let problem = ObstacleProblem::membrane(8);
        let decomp = BlockDecomposition::balanced(8, 3);
        let nodes: Vec<NodeState> = (0..3)
            .map(|r| NodeState::new(&problem, &decomp, r))
            .collect();
        let total: usize = nodes.iter().map(|s| s.local_len()).sum();
        assert_eq!(total, problem.len());
        assert_eq!(nodes[0].z_start(), 0);
        assert_eq!(nodes[2].z_end(), 8);
        assert_eq!(nodes[1].first_plane().len(), 64);
    }

    #[test]
    fn block_synchronous_matches_sequential_exactly() {
        let problem = ObstacleProblem::membrane(10);
        let config = RichardsonConfig {
            tolerance: 1e-6,
            ..Default::default()
        };
        let reference = solve_sequential(&problem, config);
        for alpha in [1usize, 2, 3, 5, 10] {
            let distributed = solve_block_synchronous(&problem, alpha, config);
            assert_eq!(
                distributed.iterations, reference.iterations,
                "synchronous relaxation count must not depend on the decomposition (alpha={alpha})"
            );
            let max_err = reference
                .u
                .iter()
                .zip(distributed.u.iter())
                .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
            assert!(
                max_err < 1e-12,
                "alpha={alpha}: distributed sync iterates diverged from sequential ({max_err})"
            );
        }
    }

    #[test]
    fn block_synchronous_matches_on_validation_problem_too() {
        let problem = ObstacleProblem::poisson_validation(8);
        let config = RichardsonConfig {
            tolerance: 1e-5,
            ..Default::default()
        };
        let a = solve_sequential(&problem, config);
        let b = solve_block_synchronous(&problem, 4, config);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn stale_ghosts_change_the_iterates_but_not_feasibility() {
        // An "asynchronous-like" emulation: never exchange ghosts. The result
        // differs from the reference but every iterate stays feasible.
        let problem = ObstacleProblem::membrane(6);
        let decomp = BlockDecomposition::balanced(6, 2);
        let mut node = NodeState::new(&problem, &decomp, 0);
        let delta = problem.optimal_delta();
        for _ in 0..50 {
            node.sweep(&problem, delta);
        }
        for (lz, value) in node.local_values().iter().enumerate() {
            let z = node.z_start() + lz / problem.grid.plane_len();
            let within = lz % problem.grid.plane_len();
            let i = within % problem.grid.n;
            let j = within / problem.grid.n;
            let gi = problem.grid.idx(i, j, z);
            assert!(*value >= problem.psi[gi] - 1e-12);
        }
        assert_eq!(node.relaxations(), 50);
    }

    #[test]
    #[should_panic(expected = "ghost plane size mismatch")]
    fn wrong_ghost_size_rejected() {
        let problem = ObstacleProblem::membrane(6);
        let decomp = BlockDecomposition::balanced(6, 2);
        let mut node = NodeState::new(&problem, &decomp, 1);
        node.set_ghost_lo(&[0.0; 3]);
    }

    /// Drive `sweeps` synchronous iterations with boundary exchange using the
    /// given kernel, returning the concatenated per-node values.
    fn drive(
        problem: &ObstacleProblem,
        alpha: usize,
        sweeps: usize,
        kernel: impl Fn(&mut NodeState, &ObstacleProblem, f64) -> f64,
    ) -> (Vec<f64>, Vec<f64>) {
        let decomp = BlockDecomposition::balanced(problem.grid.n, alpha);
        let delta = problem.optimal_delta();
        let mut nodes: Vec<NodeState> = (0..alpha)
            .map(|r| NodeState::new(problem, &decomp, r))
            .collect();
        let mut diffs = Vec::new();
        for _ in 0..sweeps {
            let diff = nodes
                .iter_mut()
                .map(|node| kernel(node, problem, delta))
                .fold(0.0f64, f64::max);
            diffs.push(diff);
            for r in 0..alpha {
                if r > 0 {
                    let plane = nodes[r - 1].last_plane();
                    nodes[r].set_ghost_lo(&plane);
                }
                if r + 1 < alpha {
                    let plane = nodes[r + 1].first_plane();
                    nodes[r].set_ghost_hi(&plane);
                }
            }
        }
        let mut u = vec![0.0; problem.len()];
        for node in &nodes {
            node.copy_into_global(&mut u);
        }
        (u, diffs)
    }

    fn assert_bit_identical(problem: &ObstacleProblem, alpha: usize, sweeps: usize) {
        let (blocked, blocked_diffs) = drive(problem, alpha, sweeps, NodeState::sweep);
        let (scalar, scalar_diffs) = drive(problem, alpha, sweeps, NodeState::sweep_scalar);
        for (idx, (a, b)) in blocked.iter().zip(scalar.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "iterate bit mismatch at {idx} (alpha={alpha})"
            );
        }
        for (a, b) in blocked_diffs.iter().zip(scalar_diffs.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "sup-norm diff mismatch");
        }
    }

    #[test]
    fn blocked_kernel_is_bit_identical_to_scalar() {
        for problem in [
            ObstacleProblem::membrane(10),
            ObstacleProblem::financial(9),
            ObstacleProblem::poisson_validation(8),
        ] {
            for alpha in [1usize, 2, 3, problem.grid.n] {
                assert_bit_identical(&problem, alpha, 25);
            }
        }
    }

    #[test]
    fn blocked_kernel_handles_single_point_rows() {
        // n = 2 rows consist of the two peeled columns alone.
        for n in [2usize, 3] {
            let problem = ObstacleProblem::membrane(n);
            assert_bit_identical(&problem, 1, 10);
        }
    }

    mod kernel_equivalence_proptests {
        use super::*;
        use crate::grid::Grid3;
        use proptest::prelude::*;

        proptest! {
            /// The blocked kernel is bit-identical to the scalar kernel on
            /// random problems, decompositions and sweep counts.
            #[test]
            fn blocked_matches_scalar_on_random_problems(
                n in 2usize..9,
                alpha_seed in 1usize..16,
                sweeps in 1usize..12,
                rhs_seed in any::<u64>(),
            ) {
                let grid = Grid3::new(n);
                let len = grid.len();
                // Deterministic pseudo-random rhs/psi from the seed.
                let mut state = rhs_seed | 1;
                let mut draw = || {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 33) as f64 / 2f64.powi(31)) - 1.0
                };
                let rhs: Vec<f64> = (0..len).map(|_| draw()).collect();
                let psi: Vec<f64> = (0..len).map(|_| draw() * 0.5).collect();
                let problem = ObstacleProblem::new(grid, rhs, psi);
                let alpha = 1 + alpha_seed % n;
                assert_bit_identical(&problem, alpha, sweeps);
            }
        }
    }
}
