//! Norms, stopping criteria and distributed convergence detection.

use serde::{Deserialize, Serialize};

/// Maximum norm of a vector.
pub fn sup_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

/// Euclidean norm of a vector.
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Maximum norm of the difference of two vectors.
pub fn sup_norm_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Stopping criterion based on the maximum norm of the successive-iterate
/// difference (the criterion used for all experiments in this reproduction;
/// the paper does not state its criterion explicitly, see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceCriterion {
    /// Threshold on the sup-norm of the successive difference.
    pub tolerance: f64,
}

impl ConvergenceCriterion {
    /// Create a criterion with the given tolerance.
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        Self { tolerance }
    }

    /// Whether a measured difference satisfies the criterion.
    pub fn is_satisfied(&self, diff: f64) -> bool {
        diff <= self.tolerance
    }
}

impl Default for ConvergenceCriterion {
    fn default() -> Self {
        Self { tolerance: 1e-6 }
    }
}

/// Coordinator-side global convergence detection for the distributed solver.
///
/// Each peer reports the sup-norm difference of its latest local relaxation.
/// Under synchronous iterations one report per peer per iteration suffices;
/// under asynchronous iterations a peer's report may be stale, so global
/// convergence is declared only when **every** peer's most recent report has
/// been below the tolerance for `persistence` consecutive reports — a
/// conservative practical test for asynchronous fixed-point iterations.
#[derive(Debug, Clone)]
pub struct GlobalConvergence {
    criterion: ConvergenceCriterion,
    persistence: u32,
    streaks: Vec<u32>,
}

impl GlobalConvergence {
    /// Create a tracker for `peers` peers.
    pub fn new(peers: usize, criterion: ConvergenceCriterion, persistence: u32) -> Self {
        assert!(peers > 0);
        assert!(persistence >= 1);
        Self {
            criterion,
            persistence,
            streaks: vec![0; peers],
        }
    }

    /// Record a local difference report from peer `r`. Returns true when the
    /// global criterion is now satisfied.
    pub fn report(&mut self, r: usize, local_diff: f64) -> bool {
        if self.criterion.is_satisfied(local_diff) {
            self.streaks[r] = self.streaks[r].saturating_add(1);
        } else {
            self.streaks[r] = 0;
        }
        self.is_globally_converged()
    }

    /// Whether every peer currently satisfies the persistence requirement.
    pub fn is_globally_converged(&self) -> bool {
        self.streaks.iter().all(|s| *s >= self.persistence)
    }

    /// Reset the tracker (e.g. after a reconfiguration).
    pub fn reset(&mut self) {
        for s in &mut self.streaks {
            *s = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_are_correct() {
        let v = [3.0, -4.0, 0.5];
        assert_eq!(sup_norm(&v), 4.0);
        assert!((l2_norm(&v) - (9.0f64 + 16.0 + 0.25).sqrt()).abs() < 1e-12);
        assert_eq!(sup_norm_diff(&[1.0, 2.0], &[1.5, 0.0]), 2.0);
    }

    #[test]
    fn criterion_thresholds() {
        let c = ConvergenceCriterion::new(1e-3);
        assert!(c.is_satisfied(1e-4));
        assert!(c.is_satisfied(1e-3));
        assert!(!c.is_satisfied(2e-3));
    }

    #[test]
    fn global_convergence_requires_all_peers() {
        let mut g = GlobalConvergence::new(3, ConvergenceCriterion::new(1e-6), 1);
        assert!(!g.report(0, 1e-9));
        assert!(!g.report(1, 1e-9));
        assert!(g.report(2, 1e-9));
    }

    #[test]
    fn persistence_requires_consecutive_reports() {
        let mut g = GlobalConvergence::new(2, ConvergenceCriterion::new(1e-6), 2);
        g.report(0, 1e-9);
        g.report(1, 1e-9);
        assert!(!g.is_globally_converged(), "only one clean round so far");
        g.report(0, 1e-9);
        assert!(g.report(1, 1e-9) || g.is_globally_converged());
        assert!(g.is_globally_converged());
        // A bad report resets that peer's streak.
        g.report(0, 1.0);
        assert!(!g.is_globally_converged());
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn zero_tolerance_rejected() {
        let _ = ConvergenceCriterion::new(0.0);
    }
}
