//! Property-based tests for the obstacle-problem crate.

use obstacle::{
    solve_block_synchronous, solve_sequential, sup_norm_diff, BlockDecomposition, ObstacleProblem,
    RichardsonConfig,
};
use proptest::prelude::*;

proptest! {
    /// A balanced decomposition always partitions the planes: contiguous,
    /// non-empty, covering ranges.
    #[test]
    fn decomposition_partitions_planes(n in 2usize..64, alpha_raw in 1usize..64) {
        let alpha = alpha_raw.min(n);
        let d = BlockDecomposition::balanced(n, alpha);
        prop_assert_eq!(d.alpha(), alpha);
        prop_assert_eq!(d.start(0), 0);
        prop_assert_eq!(d.end(alpha - 1), n);
        for r in 0..alpha {
            prop_assert!(d.count(r) >= 1);
            if r > 0 {
                prop_assert_eq!(d.start(r), d.end(r - 1));
            }
        }
        for z in 0..n {
            let owner = d.owner_of(z);
            prop_assert!(d.start(owner) <= z && z < d.end(owner));
        }
    }

    /// Projection is idempotent, monotone and enforces the obstacle for
    /// arbitrary vectors.
    #[test]
    fn projection_properties(n in 2usize..8, values in proptest::collection::vec(-10.0f64..10.0, 8)) {
        let p = ObstacleProblem::membrane(n);
        let mut v: Vec<f64> = (0..p.len()).map(|i| values[i % values.len()]).collect();
        let original = v.clone();
        p.project(&mut v);
        for idx in 0..p.len() {
            prop_assert!(v[idx] >= p.psi[idx]);
            prop_assert!(v[idx] >= original[idx] || (v[idx] - p.psi[idx]).abs() < 1e-15);
        }
        let once = v.clone();
        p.project(&mut v);
        prop_assert_eq!(v, once);
    }

    /// The synchronous block scheme reproduces the sequential iterates for any
    /// peer count (relaxation-count invariance claimed by the paper).
    #[test]
    fn block_sync_equals_sequential(n in 4usize..10, alpha_raw in 1usize..10) {
        let alpha = alpha_raw.min(n);
        let problem = ObstacleProblem::membrane(n);
        let config = RichardsonConfig { tolerance: 1e-4, ..Default::default() };
        let a = solve_sequential(&problem, config);
        let b = solve_block_synchronous(&problem, alpha, config);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert!(sup_norm_diff(&a.u, &b.u) < 1e-12);
    }

    /// Every iterate of the sequential solver is feasible (u >= psi) and the
    /// final difference is below the tolerance when converged.
    #[test]
    fn sequential_solution_feasible(n in 4usize..10) {
        let problem = ObstacleProblem::financial(n);
        let config = RichardsonConfig { tolerance: 1e-5, ..Default::default() };
        let result = solve_sequential(&problem, config);
        prop_assert!(result.converged);
        prop_assert!(result.final_diff <= 1e-5);
        for idx in 0..problem.len() {
            prop_assert!(result.u[idx] >= problem.psi[idx] - 1e-12);
        }
    }
}
