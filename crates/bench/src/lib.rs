//! Shared harness code for the evaluation reproduction: figure sweeps
//! (Figures 5 and 6), the Table I check and the ablation experiments. Both
//! the `repro` binary and the Criterion benches call into this crate.

use p2pdc::{
    derive_row, run_on, BackendExtras, ChurnPlan, ComputeModel, FigureRow, RunConfig, RuntimeKind,
    Scheme, WorkloadKind,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Peer counts used by the paper's experiments.
pub const PAPER_PEER_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 24];

/// Configuration of a figure sweep. The paper's figures run the obstacle
/// workload (membrane instance); the sweep itself goes through the
/// workload-generic experiment driver.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureConfig {
    /// Grid size actually simulated.
    pub n: usize,
    /// Grid size of the paper experiment this sweep reproduces (96 or 144).
    pub paper_n: usize,
    /// Convergence tolerance.
    pub tolerance: f64,
    /// Peer counts to sweep.
    pub peer_counts: Vec<usize>,
}

impl FigureConfig {
    /// Figure 5 (96³). By default the grid is scaled down to `n = 32` for
    /// speed; pass `full = true` to run the paper's actual 96³ size.
    pub fn figure5(full: bool) -> Self {
        Self {
            n: if full { 96 } else { 32 },
            paper_n: 96,
            tolerance: 1e-4,
            peer_counts: PAPER_PEER_COUNTS.to_vec(),
        }
    }

    /// Figure 6 (144³), scaled to `n = 48` unless `full` is set.
    pub fn figure6(full: bool) -> Self {
        Self {
            n: if full { 144 } else { 48 },
            paper_n: 144,
            tolerance: 1e-4,
            peer_counts: PAPER_PEER_COUNTS.to_vec(),
        }
    }

    /// The compute model used for this sweep.
    ///
    /// When the grid is scaled down from the paper's size, the per-point cost
    /// is scaled **up** by the cube of the ratio, so each peer's relaxation
    /// takes the same *virtual* time as it would at full size. This preserves
    /// the computation/communication granularity — the quantity that decides
    /// where synchronous schemes collapse and asynchronous schemes keep their
    /// efficiency — while keeping the real (wall-clock) kernel cost small.
    pub fn compute_model(&self) -> ComputeModel {
        let base = ComputeModel::nicta_1ghz();
        let ratio = self.paper_n as f64 / self.n as f64;
        ComputeModel::calibrated(base.ns_per_point * ratio * ratio * ratio)
    }
}

/// A complete figure: one row per (scheme, topology, peer count).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureResult {
    /// Title (e.g. "Figure 5 (96x96x96)").
    pub title: String,
    /// Sweep configuration.
    pub config: FigureConfig,
    /// All rows.
    pub rows: Vec<FigureRow>,
}

/// Run a full figure sweep: every scheme × topology × peer count.
pub fn run_figure(title: &str, config: &FigureConfig) -> FigureResult {
    run_figure_filtered(title, config, |_, _, _| true)
}

/// Run a figure sweep restricted to the configurations accepted by `keep`
/// (scheme, clusters, peers). Used by the Criterion benches to time a subset.
pub fn run_figure_filtered<F>(title: &str, config: &FigureConfig, keep: F) -> FigureResult
where
    F: Fn(Scheme, usize, usize) -> bool,
{
    let compute = config.compute_model();
    // Single-peer reference (the speedup baseline of the paper's figures).
    let reference = run_single(config, compute, Scheme::Synchronous, 1, 1);
    let reference_elapsed = reference.elapsed;

    let mut rows = Vec::new();
    for &clusters in &[1usize, 2] {
        for &scheme in &[Scheme::Synchronous, Scheme::Asynchronous, Scheme::Hybrid] {
            for &peers in &config.peer_counts {
                if peers == 1 {
                    // A single peer has no communication; the reference row
                    // already covers it (the paper's figures likewise have a
                    // single 1-machine bar).
                    continue;
                }
                if clusters == 2 && peers < 2 {
                    continue;
                }
                if !keep(scheme, clusters, peers) {
                    continue;
                }
                let measurement = run_single(config, compute, scheme, peers, clusters);
                rows.push(derive_row(
                    &scheme.to_string(),
                    if clusters == 1 {
                        "1 cluster"
                    } else {
                        "2 clusters"
                    },
                    reference_elapsed,
                    &measurement,
                ));
            }
        }
    }
    // Reference row first.
    let mut all_rows = vec![derive_row(
        "synchronous",
        "1 cluster",
        reference_elapsed,
        &reference,
    )];
    all_rows.extend(rows);
    FigureResult {
        title: title.to_string(),
        config: config.clone(),
        rows: all_rows,
    }
}

fn run_single(
    config: &FigureConfig,
    compute: ComputeModel,
    scheme: Scheme,
    peers: usize,
    clusters: usize,
) -> p2pdc::RunMeasurement {
    let workload = WorkloadKind::Obstacle.build(config.n, peers);
    let mut run = RunConfig::clustered(scheme, peers, clusters);
    run.tolerance = config.tolerance;
    run.compute = compute;
    run_on(workload.as_ref(), &run, RuntimeKind::Sim).measurement
}

/// One row of the (workload × scheme × runtime) matrix: one scenario run on
/// one of the four backends, with the harness wall time alongside the
/// runtime's own elapsed metric (virtual for the simulated backend,
/// wall-clock for the others). This is the machine-readable shape CI
/// uploads as `BENCH_runtimes.json`, seeding the perf trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeBenchRow {
    /// Workload label ("obstacle", "heat", "pagerank").
    pub workload: String,
    /// Backend label ("sim", "threads", "loopback", "udp").
    pub runtime: String,
    /// Scheme of computation.
    pub scheme: String,
    /// Problem size (grid points per dimension for the PDE workloads,
    /// vertices for PageRank).
    pub size: usize,
    /// Number of peers.
    pub peers: usize,
    /// Real time the whole run took on the bench machine, in seconds.
    pub wall_time_s: f64,
    /// The elapsed time the runtime itself reported, in seconds.
    pub reported_elapsed_s: f64,
    /// Relaxations performed by each peer.
    pub relaxations_per_peer: Vec<u64>,
    /// Total relaxations across all peers.
    pub total_relaxations: u64,
    /// Whether the run converged.
    pub converged: bool,
    /// Residual of the assembled solution under the workload's metric.
    pub residual: f64,
}

/// One scenario of the runtime matrix: a workload at a fixed size, peer
/// count, tolerance and seed, shared by every backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeMatrixScenario {
    /// The workload to run.
    pub workload: WorkloadKind,
    /// Problem size (the workload's natural size knob).
    pub size: usize,
    /// Number of peers.
    pub peers: usize,
    /// Convergence tolerance.
    pub tolerance: f64,
    /// Seed shared by all backends.
    pub seed: u64,
}

impl RuntimeMatrixScenario {
    /// The CI bench-smoke scenario of one workload: small enough for
    /// seconds-scale runs, large enough to be meaningful (the obstacle
    /// boundary planes at n = 14 span multiple UDP datagrams and exercise
    /// reassembly; PageRank's tighter tolerance matches its ~1/n rank
    /// magnitudes). The sizes are bounded by the asynchronous × UDP cells:
    /// a free-running peer relaxes hundreds of times per real-socket round
    /// trip, so slowly-converging workloads at tight tolerances burn
    /// minutes of wall clock there.
    pub fn for_workload(workload: WorkloadKind) -> Self {
        let (size, tolerance) = match workload {
            WorkloadKind::Obstacle => (14, 1e-4),
            WorkloadKind::Heat => (12, 1e-3),
            WorkloadKind::PageRank => (240, 1e-6),
        };
        Self {
            workload,
            size,
            peers: 4,
            tolerance,
            seed: 42,
        }
    }

    /// The default CI scenario of every workload.
    pub fn all_workloads() -> Vec<Self> {
        WorkloadKind::ALL.map(Self::for_workload).to_vec()
    }

    /// Smaller-than-CI scenario of one workload, shared by the criterion
    /// bench and the test suite so both measure the same configuration.
    pub fn quick(workload: WorkloadKind) -> Self {
        let (size, tolerance) = match workload {
            WorkloadKind::Obstacle => (8, 1e-3),
            WorkloadKind::Heat => (12, 1e-3),
            WorkloadKind::PageRank => (60, 1e-6),
        };
        Self {
            workload,
            size,
            peers: 2,
            tolerance,
            seed: 42,
        }
    }
}

/// A complete (workload × scheme × runtime) matrix: the scenarios plus one
/// row per (workload, backend, scheme).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeMatrixResult {
    /// Artifact schema version (bump when the row shape changes).
    pub schema_version: u32,
    /// The scenarios the rows ran (one per workload).
    pub scenarios: Vec<RuntimeMatrixScenario>,
    /// All rows.
    pub rows: Vec<RuntimeBenchRow>,
    /// Peer-scaling curve on the reactor backend (empty when the matrix ran
    /// without the scale sweep; absent in pre-v3 artifacts).
    #[serde(default)]
    pub scale: Vec<ScaleBenchRow>,
}

/// Run one scenario on one backend and measure it, through the
/// workload-generic experiment driver.
pub fn run_runtime_once(
    scenario: &RuntimeMatrixScenario,
    runtime: RuntimeKind,
    scheme: Scheme,
) -> RuntimeBenchRow {
    let workload = scenario.workload.build(scenario.size, scenario.peers);
    let mut config = RunConfig::single_cluster(scheme, scenario.peers);
    config.tolerance = scenario.tolerance;
    config.seed = scenario.seed;
    let started = Instant::now();
    let result = run_on(workload.as_ref(), &config, runtime);
    let wall = started.elapsed();
    RuntimeBenchRow {
        workload: scenario.workload.label().to_string(),
        runtime: runtime.label().to_string(),
        scheme: scheme.to_string(),
        size: scenario.size,
        peers: scenario.peers,
        wall_time_s: wall.as_secs_f64(),
        reported_elapsed_s: result.measurement.elapsed.as_secs_f64(),
        relaxations_per_peer: result.measurement.relaxations_per_peer.clone(),
        total_relaxations: result.measurement.total_relaxations(),
        converged: result.measurement.converged,
        residual: result.measurement.residual,
    }
}

/// Run the full grid over the given scenarios: every workload × every
/// backend × the synchronous and asynchronous schemes.
pub fn run_runtime_matrix_for(scenarios: &[RuntimeMatrixScenario]) -> RuntimeMatrixResult {
    let mut rows = Vec::new();
    for scenario in scenarios {
        for runtime in RuntimeKind::ALL {
            for scheme in [Scheme::Synchronous, Scheme::Asynchronous] {
                rows.push(run_runtime_once(scenario, runtime, scheme));
            }
        }
    }
    RuntimeMatrixResult {
        schema_version: 3,
        scenarios: scenarios.to_vec(),
        rows,
        scale: Vec::new(),
    }
}

/// Run the default CI grid: all three workloads on all four backends.
pub fn run_runtime_matrix() -> RuntimeMatrixResult {
    run_runtime_matrix_for(&RuntimeMatrixScenario::all_workloads())
}

/// Render the runtime matrix as text.
pub fn format_runtime_matrix(result: &RuntimeMatrixResult) -> String {
    let mut out = String::from("== Workload x runtime matrix ==\n");
    for s in &result.scenarios {
        out.push_str(&format!(
            "scenario: {} size={} peers={} tolerance={:e} seed={}\n",
            s.workload.label(),
            s.size,
            s.peers,
            s.tolerance,
            s.seed
        ));
    }
    out.push_str(&format!(
        "{:<10} {:<10} {:<14} {:>13} {:>15} {:>13} {:>10}\n",
        "workload", "runtime", "scheme", "wall [s]", "reported [s]", "relaxations", "converged"
    ));
    for r in &result.rows {
        out.push_str(&format!(
            "{:<10} {:<10} {:<14} {:>13.3} {:>15.3} {:>13} {:>10}\n",
            r.workload,
            r.runtime,
            r.scheme,
            r.wall_time_s,
            r.reported_elapsed_s,
            r.total_relaxations,
            r.converged
        ));
    }
    out
}

/// One row of the peer-scaling curve: the reactor backend multiplexing
/// `peers` engines over nonblocking localhost sockets on a handful of event
/// loops — the regime where one-OS-thread-per-peer backends stop scaling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleBenchRow {
    /// Backend label (always "reactor" today).
    pub runtime: String,
    /// Workload label (the curve runs PageRank: its vertex count scales
    /// linearly with the peer count, keeping per-peer work constant).
    pub workload: String,
    /// Scheme of computation.
    pub scheme: String,
    /// Number of peers multiplexed onto the event loops.
    pub peers: usize,
    /// Problem size (PageRank vertices = 4 × peers).
    pub size: usize,
    /// Event loops the run was multiplexed onto.
    pub event_loops: usize,
    /// Whether the run included one seeded crash + recovery.
    pub churn: bool,
    /// Real time the whole run took on the bench machine, in seconds.
    pub wall_time_s: f64,
    /// The elapsed time the runtime itself reported, in seconds.
    pub reported_elapsed_s: f64,
    /// Total relaxations across all peers.
    pub total_relaxations: u64,
    /// Whether the run converged.
    pub converged: bool,
    /// Residual of the assembled solution under the workload's metric.
    pub residual: f64,
    /// Crashes injected (0 on fault-free rows).
    pub crashes: u64,
    /// Recoveries completed (must equal `crashes` on a healthy run).
    pub recoveries: u64,
}

/// Run one cell of the peer-scaling curve: PageRank with 4 vertices per
/// peer, asynchronous scheme, on the reactor backend; optionally with one
/// seeded mid-run crash (checkpointed, detected, recovered live).
pub fn run_scale_once(peers: usize, churn: bool) -> ScaleBenchRow {
    let size = peers * 4;
    let workload = WorkloadKind::PageRank.build(size, peers);
    let mut config = RunConfig::single_cluster(Scheme::Asynchronous, peers).with_extras(
        BackendExtras::Reactor {
            event_loops: 0, // auto: one per core
            loss_probability: 0.0,
            reorder_probability: 0.0,
        },
    );
    config.tolerance = 1e-6;
    if churn {
        config = config.with_churn(ChurnPlan::kill(peers / 2, 12).with_checkpoint_interval(5));
    }
    let event_loops = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(1, peers);
    let started = Instant::now();
    let result = run_on(workload.as_ref(), &config, RuntimeKind::Reactor);
    let wall = started.elapsed();
    ScaleBenchRow {
        runtime: RuntimeKind::Reactor.label().to_string(),
        workload: WorkloadKind::PageRank.label().to_string(),
        scheme: Scheme::Asynchronous.to_string(),
        peers,
        size,
        event_loops,
        churn,
        wall_time_s: wall.as_secs_f64(),
        reported_elapsed_s: result.measurement.elapsed.as_secs_f64(),
        total_relaxations: result.measurement.total_relaxations(),
        converged: result.measurement.converged,
        residual: result.measurement.residual,
        crashes: result.measurement.crashes,
        recoveries: result.measurement.recoveries,
    }
}

/// Run the peer-scaling curve. The CI smoke sweep stops at 256 peers; the
/// full (local/nightly) sweep adds the 1024-peer point and a 1024-peer run
/// with one seeded crash + recovery.
pub fn run_scale_curve(full: bool) -> Vec<ScaleBenchRow> {
    let mut rows = vec![run_scale_once(64, false), run_scale_once(256, false)];
    if full {
        rows.push(run_scale_once(1024, false));
        rows.push(run_scale_once(1024, true));
    }
    rows
}

/// Render the peer-scaling curve as text.
pub fn format_scale_curve(rows: &[ScaleBenchRow]) -> String {
    let mut out = String::from("== Reactor peer-scaling curve ==\n");
    out.push_str(&format!(
        "{:<8} {:<8} {:<7} {:>10} {:>13} {:>13} {:>8} {:>10}\n",
        "peers", "loops", "churn", "wall [s]", "relaxations", "crash/rec", "conv", "residual"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<8} {:<7} {:>10.3} {:>13} {:>13} {:>8} {:>10.2e}\n",
            r.peers,
            r.event_loops,
            r.churn,
            r.wall_time_s,
            r.total_relaxations,
            format!("{}/{}", r.crashes, r.recoveries),
            r.converged,
            r.residual
        ));
    }
    out
}

/// One row of the churn grid: one (workload, scheme, runtime, churn level)
/// cell, with the volatility counters and the overhead against the
/// fault-free baseline of the same cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnBenchRow {
    /// Workload label ("obstacle", "heat", "pagerank").
    pub workload: String,
    /// Scheme of computation.
    pub scheme: String,
    /// Backend label ("sim", "threads", "loopback", "udp").
    pub runtime: String,
    /// Churn level: "none" (fault-free baseline), "crash1" (one seeded
    /// mid-run crash, original blocks restored), "crash1+repart" (same crash
    /// with live repartitioning applied at recovery), "crash1+join" (the
    /// crash plus a new peer joining mid-run and taking a share of the work
    /// via the same re-slice). Heterogeneous-capacity cells (one slow peer)
    /// carry a "hetero-" prefix.
    pub churn: String,
    /// Problem size.
    pub size: usize,
    /// Number of peers.
    pub peers: usize,
    /// Whether the run converged.
    pub converged: bool,
    /// Crash events injected.
    pub crashes: u64,
    /// Completed recoveries.
    pub recoveries: u64,
    /// Synchronous rollback broadcasts.
    pub rollbacks: u64,
    /// Total peer downtime in seconds of the backend's clock.
    pub downtime_s: f64,
    /// Peers that joined mid-run.
    pub joins: u64,
    /// Live repartitions applied (at recovery and at joins).
    pub repartitions: u64,
    /// Grid points whose owning rank changed across the repartitions.
    pub moved_points: u64,
    /// Real time the whole run took on the bench machine, in seconds.
    pub wall_time_s: f64,
    /// Total relaxations across all peers (final task counters — a
    /// checkpoint restore rewinds them, so this understates faulty work).
    pub total_relaxations: u64,
    /// Total grid points actually relaxed across all peers — every executed
    /// sweep counts, including the ones a restore or rollback redid.
    pub total_points: u64,
    /// Residual of the assembled solution under the workload's metric.
    pub residual: f64,
    /// Work overhead vs the fault-free baseline of the same cell, in
    /// percent of total points relaxed (0 for the baseline rows themselves).
    pub overhead_work_pct: f64,
}

/// The full churn grid: (workload × scheme × runtime × churn level).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnGridResult {
    /// Artifact schema version (bump when the row shape changes).
    pub schema_version: u32,
    /// The churn plan template applied to the crash cells, per workload
    /// label (crash iterations depend on each cell's baseline progress).
    pub plans: Vec<(String, ChurnPlan)>,
    /// All rows.
    pub rows: Vec<ChurnBenchRow>,
}

fn churn_row(
    scenario: &RuntimeMatrixScenario,
    runtime: RuntimeKind,
    scheme: Scheme,
    churn: &str,
    config: &RunConfig,
    baseline_points: Option<u64>,
) -> ChurnBenchRow {
    let workload = scenario.workload.build(scenario.size, scenario.peers);
    let started = Instant::now();
    let result = run_on(workload.as_ref(), config, runtime);
    let wall = started.elapsed();
    let total_points = result.measurement.total_points_relaxed();
    let overhead = baseline_points
        .filter(|&b| b > 0)
        .map(|b| (total_points as f64 / b as f64 - 1.0) * 100.0)
        .unwrap_or(0.0);
    ChurnBenchRow {
        workload: scenario.workload.label().to_string(),
        scheme: scheme.to_string(),
        runtime: runtime.label().to_string(),
        churn: churn.to_string(),
        size: scenario.size,
        peers: scenario.peers,
        converged: result.measurement.converged,
        crashes: result.measurement.crashes,
        recoveries: result.measurement.recoveries,
        rollbacks: result.measurement.rollbacks,
        downtime_s: result.measurement.downtime_s,
        joins: result.measurement.joins,
        repartitions: result.measurement.repartitions,
        moved_points: result.measurement.moved_points,
        wall_time_s: wall.as_secs_f64(),
        total_relaxations: result.measurement.total_relaxations(),
        total_points,
        residual: result.measurement.residual,
        overhead_work_pct: overhead,
    }
}

/// Run the churn grid over the given scenarios and runtimes: for every
/// (workload, scheme, runtime) cell, a fault-free baseline plus a run with
/// one seeded crash at ~30% of the baseline's convergence iteration —
/// recovery counts and overhead land in the rows.
pub fn run_churn_grid_for(
    scenarios: &[RuntimeMatrixScenario],
    runtimes: &[RuntimeKind],
) -> ChurnGridResult {
    let mut rows = Vec::new();
    let mut plans = Vec::new();
    for scenario in scenarios {
        for &runtime in runtimes {
            for scheme in [Scheme::Synchronous, Scheme::Asynchronous] {
                let mut config = RunConfig::single_cluster(scheme, scenario.peers);
                config.tolerance = scenario.tolerance;
                config.seed = scenario.seed;
                let baseline = churn_row(scenario, runtime, scheme, "none", &config, None);
                let baseline_points = baseline.total_points;
                // Crash the middle rank at ~10% of the baseline's per-peer
                // progress, checkpointing twice before the crash point; the
                // join (where scheduled) fires at ~20% on rank 0's clock.
                // Early triggers matter on the wall-clock asynchronous
                // cells: relaxation counts there depend on scheduling, and
                // a churn-armed run (heartbeats, detection threads) can
                // converge in fewer sweeps than the fault-free baseline —
                // a trigger calibrated deep into the baseline's horizon
                // would never fire.
                let per_peer = baseline.total_relaxations / scenario.peers as u64;
                let crash_at = (per_peer / 10).max(2);
                let join_at = (per_peer / 5).max(crash_at + 1);
                let plan = ChurnPlan::kill(scenario.peers / 2, crash_at)
                    .with_checkpoint_interval((crash_at / 2).max(1));
                rows.push(baseline);
                for (label, plan) in [
                    ("crash1", plan.clone()),
                    ("crash1+repart", plan.clone().with_repartition(true)),
                    (
                        "crash1+join",
                        plan.clone().with_repartition(true).with_join(0, join_at),
                    ),
                ] {
                    let faulty_config = config.clone().with_churn(plan);
                    rows.push(churn_row(
                        scenario,
                        runtime,
                        scheme,
                        label,
                        &faulty_config,
                        Some(baseline_points),
                    ));
                }
                if runtime == runtimes[0] && scheme == Scheme::Synchronous {
                    plans.push((scenario.workload.label().to_string(), plan));
                }
            }
        }
    }
    ChurnGridResult {
        schema_version: 2,
        plans,
        rows,
    }
}

/// The heterogeneous-capacity cells: the obstacle workload on the simulated
/// backend with one peer at 40% CPU speed, one seeded crash, with and
/// without live repartitioning. These are the cells where applying the
/// capacity-weighted shares pays: the re-slice moves planes off the slow
/// peer, so the repartitioned recovery's executed-work overhead is no worse
/// than restoring the original (mis-sized) blocks.
pub fn run_churn_hetero_cells() -> Vec<ChurnBenchRow> {
    let scenario = RuntimeMatrixScenario::quick(WorkloadKind::Obstacle);
    let slow_rank = 0usize;
    let victim = scenario.peers / 2;
    let mut rows = Vec::new();
    for scheme in [Scheme::Synchronous, Scheme::Asynchronous] {
        let mut config = RunConfig::single_cluster(scheme, scenario.peers);
        config.tolerance = scenario.tolerance;
        config.seed = scenario.seed;
        config
            .topology
            .set_cpu_speed(netsim::NodeId(slow_rank), 0.4);
        let baseline = churn_row(
            &scenario,
            RuntimeKind::Sim,
            scheme,
            "hetero-none",
            &config,
            None,
        );
        let baseline_points = baseline.total_points;
        let per_peer = baseline.total_relaxations / scenario.peers as u64;
        let crash_at = (per_peer * 3 / 10).max(2);
        let plan =
            ChurnPlan::kill(victim, crash_at).with_checkpoint_interval((crash_at / 2).max(1));
        rows.push(baseline);
        for (label, plan) in [
            ("hetero-crash1", plan.clone()),
            ("hetero-crash1+repart", plan.with_repartition(true)),
        ] {
            rows.push(churn_row(
                &scenario,
                RuntimeKind::Sim,
                scheme,
                label,
                &config.clone().with_churn(plan),
                Some(baseline_points),
            ));
        }
    }
    rows
}

/// Run the default CI churn grid: all three workloads on all four backends
/// (fault-free, crash, crash+repartition, crash+join per cell), plus the
/// heterogeneous-capacity repartition-on/off cells.
pub fn run_churn_grid() -> ChurnGridResult {
    let mut result = run_churn_grid_for(
        &RuntimeMatrixScenario::all_workloads()
            .iter()
            .map(|s| RuntimeMatrixScenario::quick(s.workload))
            .collect::<Vec<_>>(),
        &RuntimeKind::ALL,
    );
    result.rows.extend(run_churn_hetero_cells());
    result
}

/// Render the churn grid as text.
pub fn format_churn_grid(result: &ChurnGridResult) -> String {
    let mut out = String::from("== Churn grid: volatility x scheme x runtime ==\n");
    out.push_str(&format!(
        "{:<10} {:<14} {:<10} {:<20} {:>9} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>12} {:>13} {:>12}\n",
        "workload",
        "scheme",
        "runtime",
        "churn",
        "converged",
        "crash",
        "recov",
        "rollbk",
        "joins",
        "repart",
        "moved",
        "downtime[s]",
        "relaxations",
        "overhead[%]"
    ));
    for r in &result.rows {
        out.push_str(&format!(
            "{:<10} {:<14} {:<10} {:<20} {:>9} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>12.4} {:>13} {:>12.1}\n",
            r.workload,
            r.scheme,
            r.runtime,
            r.churn,
            r.converged,
            r.crashes,
            r.recoveries,
            r.rollbacks,
            r.joins,
            r.repartitions,
            r.moved_points,
            r.downtime_s,
            r.total_relaxations,
            r.overhead_work_pct
        ));
    }
    out
}

/// The Table I verification: for every (scheme, connection) cell, the
/// controller's decision compared to the paper's table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Scheme of computation.
    pub scheme: String,
    /// Connection type.
    pub connection: String,
    /// Communication mode the controller selected.
    pub mode: String,
    /// Reliability the controller selected.
    pub reliability: String,
    /// Congestion control the controller selected.
    pub congestion: String,
    /// The paper's expected (mode, reliability) for that cell.
    pub paper_expected: String,
    /// Whether the decision matches the paper.
    pub matches_paper: bool,
}

/// Evaluate all six cells of Table I against the paper.
pub fn run_table1() -> Vec<Table1Row> {
    use netsim::ConnectionType;
    use p2psap::{CommunicationMode, Controller, Reliability};
    let controller = Controller::with_table1_rules();
    let expectations = [
        (
            Scheme::Synchronous,
            ConnectionType::IntraCluster,
            "synchronous reliable",
        ),
        (
            Scheme::Synchronous,
            ConnectionType::InterCluster,
            "synchronous reliable",
        ),
        (
            Scheme::Asynchronous,
            ConnectionType::IntraCluster,
            "asynchronous reliable",
        ),
        (
            Scheme::Asynchronous,
            ConnectionType::InterCluster,
            "asynchronous unreliable",
        ),
        (
            Scheme::Hybrid,
            ConnectionType::IntraCluster,
            "synchronous reliable",
        ),
        (
            Scheme::Hybrid,
            ConnectionType::InterCluster,
            "asynchronous unreliable",
        ),
    ];
    expectations
        .iter()
        .map(|(scheme, connection, expected)| {
            let cfg = controller.decide_for(*scheme, *connection);
            let mode = match cfg.mode {
                CommunicationMode::Synchronous => "synchronous",
                CommunicationMode::Asynchronous => "asynchronous",
            };
            let reliability = match cfg.reliability {
                Reliability::Reliable => "reliable",
                Reliability::Unreliable => "unreliable",
            };
            let decided = format!("{mode} {reliability}");
            Table1Row {
                scheme: scheme.to_string(),
                connection: match connection {
                    ConnectionType::IntraCluster => "intra-cluster".to_string(),
                    ConnectionType::InterCluster => "inter-cluster".to_string(),
                },
                mode: mode.to_string(),
                reliability: reliability.to_string(),
                congestion: format!("{:?}", cfg.congestion),
                paper_expected: expected.to_string(),
                matches_paper: decided == *expected,
            }
        })
        .collect()
}

/// Render the Table I verification as text.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from("== Table I: communication adaptation rules ==\n");
    out.push_str(&format!(
        "{:<14} {:<14} {:<14} {:<12} {:<10} {:<24} {}\n",
        "scheme", "connection", "mode", "reliability", "congestion", "paper expects", "match"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<14} {:<14} {:<12} {:<10} {:<24} {}\n",
            r.scheme,
            r.connection,
            r.mode,
            r.reliability,
            r.congestion,
            r.paper_expected,
            r.matches_paper
        ));
    }
    out
}

/// One ablation comparison: the effect of pinning a data-channel design
/// choice away from the Table I decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Description of the variant.
    pub variant: String,
    /// Synchronous-send completion latency in milliseconds (mean).
    pub sync_send_latency_ms: f64,
    /// Number of data segments put on the wire for 100 application sends.
    pub wire_segments: u64,
}

/// Session-level ablation: compare reliable vs unreliable and New-Reno vs
/// H-TCP channels on an emulated lossy inter-cluster path by replaying a
/// fixed exchange of 100 sends with a given loss pattern.
pub fn run_ablation() -> Vec<AblationRow> {
    use bytes::Bytes;
    use p2psap::{ChannelConfig, Session};
    let mut rows = Vec::new();
    for (label, cfg, loss_every) in [
        (
            "async unreliable (Table I inter-cluster choice)",
            ChannelConfig::asynchronous_unreliable(),
            10usize,
        ),
        (
            "async reliable (ablation: keep reliability on the WAN)",
            ChannelConfig::asynchronous_reliable(),
            10usize,
        ),
        (
            "sync reliable (ablation: force synchronous on the WAN)",
            ChannelConfig::synchronous_reliable(),
            10usize,
        ),
    ] {
        let mut tx = Session::new(cfg);
        let mut rx = Session::new(cfg);
        let mut wire_segments = 0u64;
        let mut completion_delays = Vec::new();
        let rtt_ns: u64 = 200_000_000; // 100 ms each way
        let mut now: u64 = 0;
        for i in 0..100usize {
            now += 1_000_000;
            let (seq, out) = tx.send(Bytes::from(vec![0u8; 1024]), now);
            let mut acks = Vec::new();
            for (k, seg) in out.wire.iter().enumerate() {
                wire_segments += 1;
                let dropped = loss_every > 0 && (i + k) % loss_every == 0;
                if dropped {
                    continue;
                }
                let deliver_time = now + rtt_ns / 2;
                let rx_out = rx.on_wire(seg.clone(), deliver_time);
                for back in rx_out.wire {
                    acks.push((back, deliver_time + rtt_ns / 2));
                }
            }
            let mut completed_at = None;
            for (ack, at) in acks {
                let tx_out = tx.on_wire(ack, at);
                if tx_out.completions.contains(&seq) {
                    completed_at = Some(at);
                }
            }
            if let Some(at) = completed_at {
                completion_delays.push((at - now) as f64 / 1e6);
            } else if cfg.mode == p2psap::CommunicationMode::Asynchronous {
                completion_delays.push(0.0);
            }
        }
        let mean = if completion_delays.is_empty() {
            f64::NAN
        } else {
            completion_delays.iter().sum::<f64>() / completion_delays.len() as f64
        };
        rows.push(AblationRow {
            variant: label.to_string(),
            sync_send_latency_ms: mean,
            wire_segments,
        });
    }
    rows
}

/// Render the ablation rows as text.
pub fn format_ablation(rows: &[AblationRow]) -> String {
    let mut out =
        String::from("== Ablation: data-channel configuration on a lossy 100 ms path ==\n");
    out.push_str(&format!(
        "{:<55} {:>22} {:>15}\n",
        "variant", "send latency [ms]", "wire segments"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<55} {:>22.2} {:>15}\n",
            r.variant, r.sync_send_latency_ms, r.wire_segments
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Hot-path benchmark (BENCH_hotpath.json)

/// One kernel cell of the hot-path grid: one relaxation-kernel flavour on a
/// single-peer obstacle block (the workload whose scalar reference kernel is
/// kept for exactly this comparison).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotpathKernelRow {
    /// Workload label.
    pub workload: String,
    /// Grid points per dimension.
    pub n: usize,
    /// Kernel flavour: "blocked" (the shipping cache-blocked, branch-free
    /// kernel) or "scalar" (the per-point reference).
    pub kernel: String,
    /// Nanoseconds per relaxed grid point.
    pub sweep_ns_per_point: f64,
    /// Grid points relaxed per second.
    pub points_per_sec: f64,
}

/// One encode cell: per-exchange cost of one rank's ghost-update
/// serialization, legacy chain vs zero-copy sink.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotpathEncodeRow {
    /// Workload label.
    pub workload: String,
    /// "legacy" (fresh `outgoing()` payload `Vec`s plus the engine's old
    /// generation-tag re-wrap) or "zero_copy" (`encode_outgoing` into a warm
    /// `FrameSink`).
    pub path: String,
    /// Nanoseconds per exchange (all of one rank's outgoing frames).
    pub ns_per_exchange: f64,
    /// Heap allocation events per exchange. Real values only when the
    /// process installed [`p2pdc::allocs::CountingAllocator`] (the `repro`
    /// binary does); zero otherwise.
    pub allocs_per_exchange: f64,
    /// Heap bytes requested per exchange (same caveat).
    pub alloc_bytes_per_exchange: f64,
}

/// One end-to-end cell: a loopback run at a fixed relaxation budget
/// (compute-bound scenario; the run never converges early, so every cell
/// executes the same sweep budget).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotpathRunRow {
    /// Workload label.
    pub workload: String,
    /// Scheme of computation.
    pub scheme: String,
    /// Backend label (always "loopback": in-process, no sleep/backoff noise,
    /// so the hot path itself dominates).
    pub runtime: String,
    /// Problem size (grid points per dimension / vertices).
    pub size: usize,
    /// Number of peers.
    pub peers: usize,
    /// Total relaxations executed across all peers.
    pub relaxations: u64,
    /// Grid points relaxed per wall-clock second, whole run.
    pub points_per_sec: f64,
    /// Wall nanoseconds per relaxed point (engine + wire overhead included
    /// — this is the end-to-end figure, not the bare kernel).
    pub sweep_ns_per_point: f64,
    /// Heap allocation events per relaxation (one relaxation = one publish
    /// round). Real values only under the counting allocator.
    pub allocs_per_relaxation: f64,
    /// Heap bytes requested per relaxation (same caveat).
    pub alloc_bytes_per_relaxation: f64,
}

/// The complete hot-path artifact (`BENCH_hotpath.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotpathResult {
    /// Artifact schema version (bump when the row shapes change).
    pub schema_version: u32,
    /// Blocked-vs-scalar kernel cells.
    pub kernel: Vec<HotpathKernelRow>,
    /// Legacy-vs-zero-copy encode cells.
    pub encode: Vec<HotpathEncodeRow>,
    /// End-to-end loopback cells.
    pub runs: Vec<HotpathRunRow>,
}

/// Shape of a hot-path measurement: which cells to run and how hard.
#[derive(Debug, Clone)]
pub struct HotpathConfig {
    /// Obstacle grid sizes for the kernel cells.
    pub kernel_sizes: Vec<usize>,
    /// Timed sweeps per kernel cell (after 4 warmup sweeps — the first
    /// cell otherwise absorbs the process's CPU-frequency ramp).
    pub kernel_sweeps: u32,
    /// Timed exchanges per encode cell (after 2 warmup exchanges).
    pub encode_rounds: u32,
    /// Per-peer relaxation budget of the end-to-end cells.
    pub run_budget: u64,
    /// End-to-end scenarios: (workload, size, peers).
    pub run_scenarios: Vec<(WorkloadKind, usize, usize)>,
}

impl HotpathConfig {
    /// The CI grid: compute-bound sizes (the obstacle boundary planes at
    /// n = 64 are 32 KiB — real serialization work), seconds-scale total.
    pub fn ci() -> Self {
        Self {
            kernel_sizes: vec![64, 96],
            kernel_sweeps: 12,
            encode_rounds: 256,
            run_budget: 24,
            run_scenarios: vec![
                (WorkloadKind::Obstacle, 64, 4),
                (WorkloadKind::Heat, 512, 4),
                (WorkloadKind::PageRank, 120_000, 4),
            ],
        }
    }

    /// Milliseconds-scale shape for the test suite.
    pub fn quick() -> Self {
        Self {
            kernel_sizes: vec![16],
            kernel_sweeps: 2,
            encode_rounds: 16,
            run_budget: 6,
            run_scenarios: vec![
                (WorkloadKind::Obstacle, 12, 2),
                (WorkloadKind::Heat, 24, 2),
                (WorkloadKind::PageRank, 200, 2),
            ],
        }
    }
}

/// Grid points one global sweep of the workload relaxes.
fn points_per_global_sweep(kind: WorkloadKind, size: usize) -> f64 {
    match kind {
        WorkloadKind::Obstacle => (size * size * size) as f64,
        WorkloadKind::Heat => ((size - 2) * (size - 2)) as f64,
        WorkloadKind::PageRank => size as f64,
    }
}

fn hotpath_kernel_rows(sizes: &[usize], sweeps: u32) -> Vec<HotpathKernelRow> {
    use obstacle::{BlockDecomposition, NodeState, ObstacleProblem};
    let mut rows = Vec::new();
    for &n in sizes {
        let problem = ObstacleProblem::membrane(n);
        let decomp = BlockDecomposition::balanced(n, 1);
        let delta = problem.optimal_delta();
        for kernel in ["blocked", "scalar"] {
            let mut state = NodeState::new(&problem, &decomp, 0);
            let run = |state: &mut NodeState| match kernel {
                "blocked" => state.sweep(&problem, delta),
                _ => state.sweep_scalar(&problem, delta),
            };
            for _ in 0..4 {
                std::hint::black_box(run(&mut state));
            }
            let started = Instant::now();
            for _ in 0..sweeps {
                std::hint::black_box(run(&mut state));
            }
            let ns =
                started.elapsed().as_nanos() as f64 / (sweeps as f64 * state.local_len() as f64);
            rows.push(HotpathKernelRow {
                workload: "obstacle".to_string(),
                n,
                kernel: kernel.to_string(),
                sweep_ns_per_point: ns,
                points_per_sec: 1e9 / ns,
            });
        }
    }
    rows
}

fn hotpath_encode_rows(
    kind: WorkloadKind,
    size: usize,
    peers: usize,
    rounds: u32,
) -> Vec<HotpathEncodeRow> {
    use p2pdc::app::FrameSink;
    let workload = kind.build(size, peers);
    // An interior rank: two neighbours for the PDE workloads.
    let rank = peers / 2;
    let mut task = workload.task(rank);
    task.relax();
    let mut rows = Vec::new();
    for path in ["legacy", "zero_copy"] {
        let mut sink = FrameSink::new();
        let mut exchange = |task: &mut dyn p2pdc::IterativeTask, generation: u32| match path {
            "legacy" => {
                // What the engine used to do per publish: fresh payload
                // `Vec`s from `outgoing()`, then a fresh wire `Vec` per
                // frame to prefix the generation tag.
                for (dst, payload) in task.outgoing() {
                    let mut wire = Vec::with_capacity(4 + payload.len());
                    wire.extend_from_slice(&generation.to_le_bytes());
                    wire.extend_from_slice(&payload);
                    std::hint::black_box((dst, wire.len()));
                }
            }
            _ => {
                sink.begin(generation);
                task.encode_outgoing(&mut sink);
                std::hint::black_box(sink.len());
            }
        };
        for generation in 0..2 {
            exchange(task.as_mut(), generation);
        }
        let alloc_before = p2pdc::allocs::counters();
        let started = Instant::now();
        for generation in 2..2 + rounds {
            exchange(task.as_mut(), generation);
        }
        let elapsed_ns = started.elapsed().as_nanos() as f64;
        let alloc = p2pdc::allocs::counters().since(alloc_before);
        rows.push(HotpathEncodeRow {
            workload: kind.label().to_string(),
            path: path.to_string(),
            ns_per_exchange: elapsed_ns / rounds as f64,
            allocs_per_exchange: alloc.allocations as f64 / rounds as f64,
            alloc_bytes_per_exchange: alloc.bytes as f64 / rounds as f64,
        });
    }
    rows
}

fn hotpath_run_row(
    kind: WorkloadKind,
    size: usize,
    peers: usize,
    scheme: Scheme,
    budget: u64,
) -> HotpathRunRow {
    let workload = kind.build(size, peers);
    let mut config = RunConfig::single_cluster(scheme, peers);
    // Unreachable tolerance: the run always executes the full budget, so
    // every cell measures the same amount of work.
    config.tolerance = 1e-300;
    config.seed = 42;
    config.max_relaxations = budget;
    let alloc_before = p2pdc::allocs::counters();
    let started = Instant::now();
    let result = run_on(workload.as_ref(), &config, RuntimeKind::Loopback);
    let wall_s = started.elapsed().as_secs_f64();
    let alloc = p2pdc::allocs::counters().since(alloc_before);
    let relaxations = result.measurement.total_relaxations();
    let points = relaxations as f64 * points_per_global_sweep(kind, size) / peers as f64;
    HotpathRunRow {
        workload: kind.label().to_string(),
        scheme: scheme.to_string(),
        runtime: RuntimeKind::Loopback.label().to_string(),
        size,
        peers,
        relaxations,
        points_per_sec: points / wall_s,
        sweep_ns_per_point: wall_s * 1e9 / points,
        allocs_per_relaxation: alloc.allocations as f64 / relaxations as f64,
        alloc_bytes_per_relaxation: alloc.bytes as f64 / relaxations as f64,
    }
}

/// Run the hot-path grid: kernel cells, encode cells and end-to-end
/// loopback cells, per the config.
pub fn run_hotpath_for(config: &HotpathConfig) -> HotpathResult {
    let kernel = hotpath_kernel_rows(&config.kernel_sizes, config.kernel_sweeps);
    let mut encode = Vec::new();
    let mut runs = Vec::new();
    for &(kind, size, peers) in &config.run_scenarios {
        encode.extend(hotpath_encode_rows(kind, size, peers, config.encode_rounds));
        for scheme in [Scheme::Synchronous, Scheme::Asynchronous] {
            runs.push(hotpath_run_row(
                kind,
                size,
                peers,
                scheme,
                config.run_budget,
            ));
        }
    }
    HotpathResult {
        schema_version: 1,
        kernel,
        encode,
        runs,
    }
}

/// Run the CI hot-path grid.
pub fn run_hotpath() -> HotpathResult {
    run_hotpath_for(&HotpathConfig::ci())
}

/// Render the hot-path result as text.
pub fn format_hotpath(result: &HotpathResult) -> String {
    let mut out = String::from("== Hot path: kernel (blocked vs scalar) ==\n");
    out.push_str(&format!(
        "{:<10} {:>5} {:<8} {:>14} {:>16}\n",
        "workload", "n", "kernel", "ns/point", "points/sec"
    ));
    for r in &result.kernel {
        out.push_str(&format!(
            "{:<10} {:>5} {:<8} {:>14.3} {:>16.0}\n",
            r.workload, r.n, r.kernel, r.sweep_ns_per_point, r.points_per_sec
        ));
    }
    out.push_str("== Hot path: encode (legacy vs zero-copy) ==\n");
    out.push_str(&format!(
        "{:<10} {:<10} {:>14} {:>16} {:>18}\n",
        "workload", "path", "ns/exchange", "allocs/exchange", "bytes/exchange"
    ));
    for r in &result.encode {
        out.push_str(&format!(
            "{:<10} {:<10} {:>14.1} {:>16.2} {:>18.1}\n",
            r.workload,
            r.path,
            r.ns_per_exchange,
            r.allocs_per_exchange,
            r.alloc_bytes_per_exchange
        ));
    }
    out.push_str("== Hot path: end-to-end (loopback, fixed budget) ==\n");
    out.push_str(&format!(
        "{:<10} {:<14} {:>8} {:>12} {:>16} {:>12} {:>14}\n",
        "workload", "scheme", "size", "relaxations", "points/sec", "ns/point", "allocs/relax"
    ));
    for r in &result.runs {
        out.push_str(&format!(
            "{:<10} {:<14} {:>8} {:>12} {:>16.0} {:>12.3} {:>14.2}\n",
            r.workload,
            r.scheme,
            r.size,
            r.relaxations,
            r.points_per_sec,
            r.sweep_ns_per_point,
            r.allocs_per_relaxation
        ));
    }
    out
}

/// The hot-sweep cell of the contention artifact: a run shaped so *every*
/// sweep is the common case (dirty report, no armed event, no checkpoint
/// boundary), with the instrumented lock counters read afterwards. The
/// smoke assertion is that the per-sweep paths acquired zero mutexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionHotSweep {
    /// Backend label (loopback: in-process, so the counters measure the
    /// control plane and nothing else).
    pub runtime: String,
    /// Scheme of computation.
    pub scheme: String,
    /// Number of peers.
    pub peers: usize,
    /// Total relaxations executed (every one a hot sweep).
    pub relaxations: u64,
    /// Detector-mutex acquisitions from any entry point (start/stop
    /// bookkeeping is allowed to lock; the per-sweep path is not).
    pub detector_locks: u64,
    /// Detector-mutex acquisitions from the per-sweep report path. Must be
    /// zero: every report here is dirty and goes through its report cell.
    pub detector_report_locks: u64,
    /// Volatility-mutex acquisitions from the per-sweep gates. Must be
    /// zero: the plan's only event and the checkpoint cadence both sit far
    /// beyond the relaxation budget.
    pub volatility_sweep_locks: u64,
}

/// One row of the contention grid: the reactor backend at `peers`, with
/// throughput and the instrumented lock counters normalized per relaxation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionBenchRow {
    /// Backend label (always "reactor").
    pub runtime: String,
    /// Scheme of computation.
    pub scheme: String,
    /// Number of peers multiplexed onto the event loops.
    pub peers: usize,
    /// Whether the run included one seeded crash + recovery (exercises the
    /// heartbeat/eviction path, so `topology_locks_per_relaxation` is real).
    pub churn: bool,
    /// Whether measured loop rebalancing was enabled.
    pub rebalance: bool,
    /// Real time the whole run took on the bench machine, in seconds.
    pub wall_time_s: f64,
    /// Grid points relaxed per wall-clock second.
    pub points_per_sec: f64,
    /// Total relaxations across all peers.
    pub total_relaxations: u64,
    /// Whether the run converged.
    pub converged: bool,
    /// Detector-mutex acquisitions per relaxation (all entry points).
    pub detector_locks_per_relaxation: f64,
    /// Detector-mutex acquisitions per relaxation from the per-sweep report
    /// path (reports at or below tolerance — peers near convergence).
    pub detector_report_locks_per_relaxation: f64,
    /// Volatility-mutex acquisitions per relaxation from the per-sweep
    /// gates (checkpoint boundaries and due events only).
    pub volatility_sweep_locks_per_relaxation: f64,
    /// Topology-manager acquisitions per relaxation (batched heartbeats,
    /// eviction sweeps; zero on fault-free rows, which run no detector).
    pub topology_locks_per_relaxation: f64,
    /// Peers migrated between event loops by the rebalancer.
    pub migrations: u64,
}

/// The complete contention artifact (`BENCH_contention.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionResult {
    /// Artifact schema version (bump when the row shapes change).
    pub schema_version: u32,
    /// The instrumented hot-sweep cell with its zero-lock assertion inputs.
    pub hot_sweep: ContentionHotSweep,
    /// Reactor scaling rows with per-relaxation lock counters.
    pub rows: Vec<ContentionBenchRow>,
}

/// Run the instrumented hot-sweep cell: 64 synchronous loopback peers, a
/// tolerance no diff can reach (every report dirty), a churn plan attached
/// but with its event and checkpoint cadence beyond the relaxation budget
/// (the volatility gates are evaluated every sweep yet never due). The
/// process-global counters mean this is only meaningful single-threaded —
/// the `repro` binary, not the parallel test harness.
pub fn run_contention_hot_sweep() -> ContentionHotSweep {
    use p2pdc::runtime::report_cell::contention;
    let peers = 64;
    let size = peers * 4;
    let budget = 50;
    let workload = WorkloadKind::PageRank.build(size, peers);
    let mut config = RunConfig::single_cluster(Scheme::Synchronous, peers);
    // Negative tolerance: diffs are nonnegative, so no sweep ever reads as
    // converged and every report takes the dirty path.
    config.tolerance = -1.0;
    config.max_relaxations = budget;
    config = config
        .with_churn(ChurnPlan::kill(0, budget * 1000).with_checkpoint_interval(budget * 1000));
    contention::reset();
    let result = run_on(workload.as_ref(), &config, RuntimeKind::Loopback);
    let counters = contention::snapshot();
    ContentionHotSweep {
        runtime: RuntimeKind::Loopback.label().to_string(),
        scheme: Scheme::Synchronous.to_string(),
        peers,
        relaxations: result.measurement.total_relaxations(),
        detector_locks: counters.detector_locks,
        detector_report_locks: counters.detector_report_locks,
        volatility_sweep_locks: counters.volatility_sweep_locks,
    }
}

/// Run one reactor cell of the contention grid (same shape as the scale
/// curve: PageRank, 4 vertices per peer, asynchronous).
pub fn run_contention_once(peers: usize, churn: bool, rebalance: bool) -> ContentionBenchRow {
    use p2pdc::runtime::{reactor, report_cell::contention};
    let size = peers * 4;
    let workload = WorkloadKind::PageRank.build(size, peers);
    let mut config = RunConfig::single_cluster(Scheme::Asynchronous, peers).with_extras(
        BackendExtras::Reactor {
            event_loops: 0, // auto: one per core
            loss_probability: 0.0,
            reorder_probability: 0.0,
        },
    );
    config.tolerance = 1e-6;
    if churn {
        config = config.with_churn(ChurnPlan::kill(peers / 2, 12).with_checkpoint_interval(5));
    }
    reactor::set_rebalance_enabled(rebalance);
    contention::reset();
    let started = Instant::now();
    let result = run_on(workload.as_ref(), &config, RuntimeKind::Reactor);
    let wall = started.elapsed().as_secs_f64();
    let counters = contention::snapshot();
    reactor::set_rebalance_enabled(true);
    let relaxations = result.measurement.total_relaxations();
    let per_relax = relaxations.max(1) as f64;
    let points =
        relaxations as f64 * points_per_global_sweep(WorkloadKind::PageRank, size) / peers as f64;
    ContentionBenchRow {
        runtime: RuntimeKind::Reactor.label().to_string(),
        scheme: Scheme::Asynchronous.to_string(),
        peers,
        churn,
        rebalance,
        wall_time_s: wall,
        points_per_sec: points / wall,
        total_relaxations: relaxations,
        converged: result.measurement.converged,
        detector_locks_per_relaxation: counters.detector_locks as f64 / per_relax,
        detector_report_locks_per_relaxation: counters.detector_report_locks as f64 / per_relax,
        volatility_sweep_locks_per_relaxation: counters.volatility_sweep_locks as f64 / per_relax,
        topology_locks_per_relaxation: counters.topology_locks as f64 / per_relax,
        migrations: reactor::last_loop_stats()
            .map(|s| s.migrations)
            .unwrap_or(0),
    }
}

/// Run the contention grid: the hot-sweep cell plus reactor rows at
/// 4/64/256 peers (1024 with `full`). The 64-peer point runs fault-free and
/// with churn (the churn row measures the batched heartbeat's topology
/// locking); the 256-peer point runs with rebalancing off and on (the
/// regression guard for loop migration).
pub fn run_contention(full: bool) -> ContentionResult {
    let hot_sweep = run_contention_hot_sweep();
    let mut rows = vec![
        run_contention_once(4, false, true),
        run_contention_once(64, false, true),
        run_contention_once(64, true, true),
        run_contention_once(256, false, false),
        run_contention_once(256, false, true),
    ];
    if full {
        rows.push(run_contention_once(1024, false, true));
    }
    ContentionResult {
        schema_version: 1,
        hot_sweep,
        rows,
    }
}

/// Render the contention result as text.
pub fn format_contention(result: &ContentionResult) -> String {
    let h = &result.hot_sweep;
    let mut out = String::from("== Contention: instrumented hot sweep (loopback) ==\n");
    out.push_str(&format!(
        "{} peers {} | relaxations {} | detector locks {} | \
         report-path locks {} | volatility sweep locks {}\n",
        h.peers,
        h.scheme,
        h.relaxations,
        h.detector_locks,
        h.detector_report_locks,
        h.volatility_sweep_locks
    ));
    out.push_str("== Contention: reactor grid (locks per relaxation) ==\n");
    out.push_str(&format!(
        "{:<7} {:<6} {:<10} {:>10} {:>14} {:>10} {:>10} {:>10} {:>10} {:>6}\n",
        "peers",
        "churn",
        "rebalance",
        "wall [s]",
        "points/sec",
        "det/rel",
        "rep/rel",
        "vol/rel",
        "topo/rel",
        "migr"
    ));
    for r in &result.rows {
        out.push_str(&format!(
            "{:<7} {:<6} {:<10} {:>10.3} {:>14.0} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>6}\n",
            r.peers,
            r.churn,
            r.rebalance,
            r.wall_time_s,
            r.points_per_sec,
            r.detector_locks_per_relaxation,
            r.detector_report_locks_per_relaxation,
            r.volatility_sweep_locks_per_relaxation,
            r.topology_locks_per_relaxation,
            r.migrations
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Gossip control-plane benchmark (BENCH_gossip.json)
// ---------------------------------------------------------------------------

/// One cell of the gossip grid: a run under one control plane, with the
/// gossip traffic counters and the decision lag against its paired
/// centralized run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GossipBenchRow {
    /// Workload label.
    pub workload: String,
    /// Backend label.
    pub runtime: String,
    /// Scheme of computation.
    pub scheme: String,
    /// Control plane: "centralized" or "gossip".
    pub control: String,
    /// Gossip fanout (0 on centralized rows).
    pub fanout: usize,
    /// Number of peers.
    pub peers: usize,
    /// Whether the run included one seeded crash + recovery.
    pub churn: bool,
    /// Real time the whole run took on the bench machine, in seconds.
    pub wall_time_s: f64,
    /// The elapsed time the runtime itself reported, in seconds.
    pub reported_elapsed_s: f64,
    /// Total relaxations across all peers.
    pub total_relaxations: u64,
    /// Minimum relaxations of any peer (what a late stop inflates first).
    pub min_relaxations: u64,
    /// Whether the run converged.
    pub converged: bool,
    /// Crashes injected / recoveries completed.
    pub crashes: u64,
    pub recoveries: u64,
    /// Crash-to-recovery latency (downtime) in seconds; the failure
    /// *detection* latency comparison on churn rows (0 on fault-free rows).
    pub detection_latency_s: f64,
    /// Gossip traffic counters of this cell (all zero on centralized rows).
    pub probes_sent: u64,
    pub indirect_probes: u64,
    pub rumors_sent: u64,
    pub rumors_received: u64,
    pub row_merges: u64,
    pub death_verdicts: u64,
    /// `min_relaxations` minus the paired centralized run's — the decision
    /// lag the digest pays for decentralization (0 on centralized rows).
    pub decision_lag_relaxations: i64,
}

/// The complete gossip artifact (`BENCH_gossip.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GossipGridResult {
    /// Artifact schema version (bump when the row shape changes).
    pub schema_version: u32,
    /// All rows: each gossip row directly follows its centralized pair.
    pub rows: Vec<GossipBenchRow>,
}

/// Run one cell: PageRank with 4 vertices per peer under the given control
/// plane. `fanout == 0` means centralized.
pub fn run_gossip_once(
    runtime: RuntimeKind,
    scheme: Scheme,
    fanout: usize,
    peers: usize,
    churn: bool,
) -> GossipBenchRow {
    let size = peers * 4;
    let workload = WorkloadKind::PageRank.build(size, peers);
    let mut config = RunConfig::single_cluster(scheme, peers);
    // Looser than the runtime-matrix cells: under churn the gossip stop
    // decision needs digest agreement across a recovery rollback, and at
    // 1e-6 that multiplies the redone work into minutes per cell.
    config.tolerance = 1e-4;
    if fanout > 0 {
        config = config.with_gossip(fanout);
    }
    if churn {
        config = config.with_churn(ChurnPlan::kill(peers / 2, 12).with_checkpoint_interval(5));
    }
    p2pdc::gossip::stats::reset();
    let started = Instant::now();
    let result = run_on(workload.as_ref(), &config, runtime);
    let wall = started.elapsed();
    let counters = p2pdc::gossip::stats::snapshot();
    GossipBenchRow {
        workload: WorkloadKind::PageRank.label().to_string(),
        runtime: runtime.label().to_string(),
        scheme: scheme.to_string(),
        control: if fanout > 0 { "gossip" } else { "centralized" }.to_string(),
        fanout,
        peers,
        churn,
        wall_time_s: wall.as_secs_f64(),
        reported_elapsed_s: result.measurement.elapsed.as_secs_f64(),
        total_relaxations: result.measurement.total_relaxations(),
        min_relaxations: result.measurement.min_relaxations(),
        converged: result.measurement.converged,
        crashes: result.measurement.crashes,
        recoveries: result.measurement.recoveries,
        detection_latency_s: result.measurement.downtime_s,
        probes_sent: counters.probes_sent,
        indirect_probes: counters.indirect_probes,
        rumors_sent: counters.rumors_sent,
        rumors_received: counters.rumors_received,
        row_merges: counters.row_merges,
        death_verdicts: counters.death_verdicts,
        decision_lag_relaxations: 0,
    }
}

/// Run the gossip grid: every (scheme × runtime × fanout) cell at 8 peers,
/// each gossip run paired with a centralized run on the same seed, plus
/// crash + recovery cells on the wall-clock backends (8-peer UDP, 64-peer
/// reactor) comparing the SWIM detection latency against the centralized
/// ping sweep.
pub fn run_gossip_grid() -> GossipGridResult {
    let mut rows = Vec::new();
    let pair = |runtime: RuntimeKind,
                scheme: Scheme,
                fanouts: &[usize],
                peers: usize,
                churn: bool,
                rows: &mut Vec<GossipBenchRow>| {
        let centralized = run_gossip_once(runtime, scheme, 0, peers, churn);
        let base = centralized.min_relaxations as i64;
        rows.push(centralized);
        for &fanout in fanouts {
            let mut row = run_gossip_once(runtime, scheme, fanout, peers, churn);
            row.decision_lag_relaxations = row.min_relaxations as i64 - base;
            rows.push(row);
        }
    };
    for runtime in [
        RuntimeKind::Loopback,
        RuntimeKind::Sim,
        RuntimeKind::Udp,
        RuntimeKind::Reactor,
    ] {
        for scheme in [Scheme::Synchronous, Scheme::Asynchronous] {
            pair(runtime, scheme, &[2, 3], 8, false, &mut rows);
        }
    }
    // Detection-latency cells: one seeded crash; SWIM suspicion vs the
    // centralized missed-ping sweep. The UDP backend spawns a real thread
    // per peer, so its cell stays small enough not to oversubscribe
    // CI-class machines (64 runnable threads on a couple of cores starve
    // the 25 ms ack windows on both control planes); the reactor
    // multiplexes peers onto event loops and carries the 64-peer cell.
    pair(
        RuntimeKind::Udp,
        Scheme::Asynchronous,
        &[3],
        8,
        true,
        &mut rows,
    );
    pair(
        RuntimeKind::Reactor,
        Scheme::Asynchronous,
        &[3],
        64,
        true,
        &mut rows,
    );
    GossipGridResult {
        schema_version: 1,
        rows,
    }
}

/// Render the gossip grid as text.
pub fn format_gossip(result: &GossipGridResult) -> String {
    let mut out = String::from("== Gossip control plane: scheme x runtime x fanout grid ==\n");
    out.push_str(&format!(
        "{:<10} {:<14} {:<12} {:<7} {:<6} {:<6} {:>10} {:>11} {:>8} {:>8} {:>8} {:>7} {:>9} {:>6}\n",
        "runtime",
        "scheme",
        "control",
        "fanout",
        "peers",
        "churn",
        "wall [s]",
        "relax(min)",
        "lag",
        "probes",
        "rumors",
        "merges",
        "detect[s]",
        "conv"
    ));
    for r in &result.rows {
        out.push_str(&format!(
            "{:<10} {:<14} {:<12} {:<7} {:<6} {:<6} {:>10.3} {:>11} {:>8} {:>8} {:>8} {:>7} {:>9.3} {:>6}\n",
            r.runtime,
            r.scheme,
            r.control,
            r.fanout,
            r.peers,
            r.churn,
            r.wall_time_s,
            r.min_relaxations,
            r.decision_lag_relaxations,
            r.probes_sent,
            r.rumors_sent,
            r.row_merges,
            r.detection_latency_s,
            r.converged
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_grid_rows_round_trip_through_serde() {
        // One cheap deterministic pair (loopback, 4 peers) rather than the
        // full grid: this test pins the artifact schema, not the numbers.
        let centralized = run_gossip_once(RuntimeKind::Loopback, Scheme::Asynchronous, 0, 4, false);
        let mut gossip = run_gossip_once(RuntimeKind::Loopback, Scheme::Asynchronous, 2, 4, false);
        gossip.decision_lag_relaxations =
            gossip.min_relaxations as i64 - centralized.min_relaxations as i64;
        assert!(centralized.converged && gossip.converged);
        assert_eq!(centralized.probes_sent, 0, "centralized runs never probe");
        assert!(gossip.probes_sent > 0, "gossip runs must probe");
        assert!(
            gossip.decision_lag_relaxations >= 0,
            "gossip stopped on weaker evidence than the central fold"
        );
        let result = GossipGridResult {
            schema_version: 1,
            rows: vec![centralized, gossip],
        };
        let json = serde_json::to_string(&result).unwrap();
        let back: GossipGridResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, 1);
        assert_eq!(back.rows.len(), 2);
        assert_eq!(back.rows[1].control, "gossip");
        assert_eq!(back.rows[1].fanout, 2);
        assert_eq!(back.rows[1].min_relaxations, result.rows[1].min_relaxations);
    }

    #[test]
    fn table1_matches_the_paper_in_all_six_cells() {
        let rows = run_table1();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.matches_paper));
    }

    #[test]
    fn compute_model_scaling_preserves_granularity() {
        let scaled = FigureConfig::figure5(false);
        let full = FigureConfig::figure5(true);
        // Per-sweep virtual cost of the whole grid must match between the
        // scaled and full configurations.
        let scaled_cost = scaled.compute_model().ns_per_point * (scaled.n as f64).powi(3);
        let full_cost = full.compute_model().ns_per_point * (full.n as f64).powi(3);
        assert!((scaled_cost - full_cost).abs() / full_cost < 1e-12);
    }

    #[test]
    fn ablation_produces_three_variants() {
        let rows = run_ablation();
        assert_eq!(rows.len(), 3);
        // The synchronous variant has a real (positive) completion latency.
        assert!(rows[2].sync_send_latency_ms > 100.0);
        // Reliable variants put more segments on the wire than the unreliable one.
        assert!(rows[1].wire_segments >= rows[0].wire_segments);
    }

    #[test]
    fn runtime_matrix_covers_all_workloads_and_backends() {
        let scenarios: Vec<RuntimeMatrixScenario> =
            WorkloadKind::ALL.map(RuntimeMatrixScenario::quick).to_vec();
        let result = run_runtime_matrix_for(&scenarios);
        assert_eq!(
            result.rows.len(),
            WorkloadKind::ALL.len() * RuntimeKind::ALL.len() * 2
        );
        for row in &result.rows {
            assert!(
                row.converged,
                "{}/{}/{} did not converge",
                row.workload, row.runtime, row.scheme
            );
            assert!(row.wall_time_s > 0.0);
            assert_eq!(row.relaxations_per_peer.len(), 2);
            // Synchronous termination leaves a residual on the order of the
            // tolerance; asynchronous termination accepts boundary staleness
            // (see the obstacle staleness-bound test), so its cap is looser.
            let cap = if row.scheme == "synchronous" {
                let scenario = scenarios
                    .iter()
                    .find(|s| s.workload.label() == row.workload)
                    .unwrap();
                scenario.tolerance * 10.0
            } else {
                5e-2
            };
            assert!(
                row.residual < cap,
                "{}/{}/{}: residual {}",
                row.workload,
                row.runtime,
                row.scheme,
                row.residual
            );
        }
        // Every workload appears on every backend.
        for workload in WorkloadKind::ALL {
            for runtime in RuntimeKind::ALL {
                assert!(
                    result
                        .rows
                        .iter()
                        .any(|r| r.workload == workload.label() && r.runtime == runtime.label()),
                    "missing {workload}/{runtime} row"
                );
            }
        }
        // The matrix serializes for the BENCH_runtimes.json artifact.
        let json = serde_json::to_string(&result).expect("serializes");
        assert!(json.contains("\"udp\"") && json.contains("schema_version"));
        assert!(json.contains("\"pagerank\"") && json.contains("\"heat\""));
    }

    #[test]
    fn scale_cell_runs_and_serializes() {
        // A miniature cell keeps the test fast; the 64/256-peer sweep runs
        // in CI's bench-smoke job and the 1024-peer points run nightly.
        let row = run_scale_once(8, false);
        assert!(row.converged, "8-peer reactor cell did not converge");
        assert_eq!(row.runtime, "reactor");
        assert_eq!(row.size, 32);
        assert_eq!(row.crashes, 0);
        assert!(row.event_loops >= 1);
        assert!(row.wall_time_s > 0.0);
        // The curve travels inside the BENCH_runtimes.json artifact; pre-v3
        // artifacts without a `scale` field must still deserialize.
        let mut result = run_runtime_matrix_for(&[]);
        result.scale = vec![row];
        let json = serde_json::to_string(&result).expect("serializes");
        assert!(json.contains("\"scale\"") && json.contains("\"event_loops\""));
        let legacy: RuntimeMatrixResult =
            serde_json::from_str(r#"{"schema_version":2,"scenarios":[],"rows":[]}"#)
                .expect("pre-v3 artifact still parses");
        assert!(legacy.scale.is_empty());
    }

    #[test]
    fn churn_grid_reports_recoveries_and_overhead() {
        // Loopback-only keeps the test fast; the full four-runtime grid is
        // exercised by `repro churn` in the bench-smoke CI job.
        let scenarios: Vec<RuntimeMatrixScenario> =
            WorkloadKind::ALL.map(RuntimeMatrixScenario::quick).to_vec();
        let result = run_churn_grid_for(&scenarios, &[RuntimeKind::Loopback]);
        // One baseline + three churn rows per (workload, scheme).
        assert_eq!(result.rows.len(), WorkloadKind::ALL.len() * 2 * 4);
        for row in &result.rows {
            assert!(
                row.converged,
                "{}/{}/{}/{} did not converge",
                row.workload, row.scheme, row.runtime, row.churn
            );
            match row.churn.as_str() {
                "none" => {
                    assert_eq!(row.crashes, 0);
                    assert_eq!(row.recoveries, 0);
                    assert_eq!(row.overhead_work_pct, 0.0);
                    assert_eq!(row.repartitions, 0);
                }
                churn @ ("crash1" | "crash1+repart" | "crash1+join") => {
                    assert_eq!(row.crashes, 1, "{}/{}", row.workload, row.scheme);
                    assert_eq!(row.recoveries, 1);
                    assert!(row.total_points > 0);
                    // Asynchronous survivors free-run during the downtime,
                    // so the points-based overhead must register the crash
                    // as extra executed work. (Synchronous cells stall
                    // instead, and with a tight checkpoint interval the
                    // redone work can vanish inside the ±1 stop-race sweep.)
                    if row.scheme == "asynchronous" && churn == "crash1" {
                        assert!(
                            row.overhead_work_pct > 0.0,
                            "{}/{}: overhead {}",
                            row.workload,
                            row.scheme,
                            row.overhead_work_pct
                        );
                    }
                    if row.scheme == "synchronous" {
                        assert!(
                            row.rollbacks >= 1,
                            "{}/{churn}: synchronous recovery must roll back",
                            row.workload
                        );
                    }
                    if churn == "crash1" {
                        assert_eq!(row.repartitions, 0);
                        assert_eq!(row.joins, 0);
                    } else {
                        assert!(
                            row.repartitions >= 1,
                            "{}/{}/{churn}: the re-slice must be applied",
                            row.workload,
                            row.scheme
                        );
                        assert!(row.moved_points > 0, "{}/{churn}", row.workload);
                    }
                    if churn == "crash1+join" {
                        assert_eq!(row.joins, 1, "{}/{}", row.workload, row.scheme);
                    } else {
                        assert_eq!(row.joins, 0);
                    }
                }
                other => panic!("unexpected churn level {other}"),
            }
        }
        // The artifact serializes with its plans.
        let json = serde_json::to_string(&result).expect("serializes");
        assert!(json.contains("crash1") && json.contains("checkpoint_interval"));
        assert!(json.contains("repartitions") && json.contains("moved_points"));
    }

    #[test]
    fn hetero_cells_show_repartition_overhead_no_worse_than_restoring_old_blocks() {
        let rows = run_churn_hetero_cells();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(
                row.converged,
                "{}/{} did not converge",
                row.scheme, row.churn
            );
        }
        // The acceptance criterion of the elastic-membership PR: for at
        // least one heterogeneous-capacity cell, applying the
        // capacity-weighted shares at recovery costs no more executed work
        // than restoring the original blocks.
        let pairs: Vec<(&ChurnBenchRow, &ChurnBenchRow)> = ["synchronous", "asynchronous"]
            .iter()
            .map(|scheme| {
                let find = |churn: &str| {
                    rows.iter()
                        .find(|r| r.scheme == *scheme && r.churn == churn)
                        .expect("cell present")
                };
                (find("hetero-crash1"), find("hetero-crash1+repart"))
            })
            .collect();
        assert!(
            pairs
                .iter()
                .any(|(without, with)| with.overhead_work_pct <= without.overhead_work_pct),
            "repartitioning must pay off in at least one heterogeneous cell: {:?}",
            pairs
                .iter()
                .map(|(a, b)| (a.scheme.clone(), a.overhead_work_pct, b.overhead_work_pct))
                .collect::<Vec<_>>()
        );
        // And the repartitioned cells really moved work off the slow peer.
        assert!(pairs.iter().all(|(_, with)| with.repartitions >= 1));
    }

    #[test]
    fn tiny_figure_sweep_produces_consistent_rows() {
        let config = FigureConfig {
            n: 8,
            paper_n: 8,
            tolerance: 1e-3,
            peer_counts: vec![1, 2, 4],
        };
        let result = run_figure_filtered("tiny", &config, |_, clusters, _| clusters == 1);
        assert!(result.rows.len() >= 7);
        for row in &result.rows {
            assert!(row.converged, "row {row:?} did not converge");
            assert!(row.time_s > 0.0);
            assert!(row.speedup > 0.0);
        }
        // The single-peer reference has speedup exactly 1.
        assert!((result.rows[0].speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quick_hotpath_grid_is_well_formed() {
        let config = HotpathConfig::quick();
        let result = run_hotpath_for(&config);
        assert_eq!(result.schema_version, 1);
        // One blocked + one scalar cell per kernel size.
        assert_eq!(result.kernel.len(), 2 * config.kernel_sizes.len());
        // One legacy + one zero-copy cell per scenario.
        assert_eq!(result.encode.len(), 2 * config.run_scenarios.len());
        // One sync + one async cell per scenario.
        assert_eq!(result.runs.len(), 2 * config.run_scenarios.len());
        for r in &result.kernel {
            assert!(r.sweep_ns_per_point > 0.0 && r.points_per_sec > 0.0);
        }
        for r in &result.encode {
            assert!(r.ns_per_exchange > 0.0);
        }
        for r in &result.runs {
            // The tolerance is unreachable, so at least one peer must have
            // burned the full relaxation budget before broadcasting stop.
            assert!(
                r.relaxations >= config.run_budget,
                "cell did not exhaust its budget: {r:?}"
            );
            assert!(r.points_per_sec > 0.0);
        }
        // The artifact must round-trip through serde.
        let json = serde_json::to_string(&result).expect("serialize");
        let back: HotpathResult = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.runs.len(), result.runs.len());
        // And the text rendering mentions every section.
        let text = format_hotpath(&result);
        assert!(text.contains("kernel") && text.contains("encode") && text.contains("loopback"));
    }
}
