//! `repro` — regenerate the paper's evaluation artifacts.
//!
//! Usage:
//!
//! ```text
//! repro table1                 # Table I: adaptation rules
//! repro fig5 [--full]          # Figure 5: 96³ obstacle problem (default: scaled 32³)
//! repro fig6 [--full]          # Figure 6: 144³ obstacle problem (default: scaled 48³)
//! repro ablation               # data-channel design-choice ablation
//! repro all [--full]           # everything above
//! ```
//!
//! Results are printed as text tables and also written as JSON under
//! `results/` for EXPERIMENTS.md.

use bench_suite::{
    format_ablation, format_table1, run_ablation, run_figure, run_table1, FigureConfig,
};
use p2pdc::format_table;

fn write_json(name: &str, value: &impl serde::Serialize) {
    let _ = std::fs::create_dir_all("results");
    let path = format!("results/{name}.json");
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if std::fs::write(&path, body).is_ok() {
                eprintln!("(wrote {path})");
            }
        }
        Err(e) => eprintln!("could not serialize {name}: {e}"),
    }
}

fn run_fig(which: u8, full: bool) {
    let (config, paper_label) = match which {
        5 => (FigureConfig::figure5(full), "96x96x96"),
        _ => (FigureConfig::figure6(full), "144x144x144"),
    };
    let title = format!(
        "Figure {which}: obstacle problem {paper_label} (simulated at {n}^3, granularity-preserving compute model)",
        n = config.n
    );
    eprintln!("running {title} ...");
    let result = run_figure(&title, &config);
    println!("{}", format_table(&result.title, &result.rows));
    write_json(
        &format!("fig{which}{}", if full { "_full" } else { "" }),
        &result,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(|s| s.as_str()).unwrap_or("all");
    let full = args.iter().any(|a| a == "--full");

    match command {
        "table1" => {
            let rows = run_table1();
            println!("{}", format_table1(&rows));
            write_json("table1", &rows);
            if !rows.iter().all(|r| r.matches_paper) {
                eprintln!("WARNING: controller decisions deviate from the paper's Table I");
                std::process::exit(1);
            }
        }
        "fig5" => run_fig(5, full),
        "fig6" => run_fig(6, full),
        "ablation" => {
            let rows = run_ablation();
            println!("{}", format_ablation(&rows));
            write_json("ablation", &rows);
        }
        "all" => {
            let rows = run_table1();
            println!("{}", format_table1(&rows));
            write_json("table1", &rows);
            run_fig(5, full);
            run_fig(6, full);
            let ablation = run_ablation();
            println!("{}", format_ablation(&ablation));
            write_json("ablation", &ablation);
        }
        other => {
            eprintln!("unknown command '{other}'; expected table1 | fig5 | fig6 | ablation | all");
            std::process::exit(2);
        }
    }
}
