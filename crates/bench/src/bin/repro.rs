//! `repro` — regenerate the paper's evaluation artifacts.
//!
//! Usage:
//!
//! ```text
//! repro table1                 # Table I: adaptation rules
//! repro fig5 [--full]          # Figure 5: 96³ obstacle problem (default: scaled 32³)
//! repro fig6 [--full]          # Figure 6: 144³ obstacle problem (default: scaled 48³)
//! repro ablation               # data-channel design-choice ablation
//! repro runtimes               # (workload x scheme x runtime) matrix -> BENCH_runtimes.json
//! repro scale [--full]         # matrix + reactor peer-scaling curve (64/256; --full adds 1024
//!                              # and a 1024-peer crash+recovery run) -> BENCH_runtimes.json
//! repro churn                  # churn grid (crash + recovery per cell) -> BENCH_churn.json
//! repro hotpath                # kernel/encode/end-to-end grid -> BENCH_hotpath.json
//! repro contention             # control-plane lock grid (--full adds the 1024-peer row)
//!                              # -> BENCH_contention.json
//! repro gossip                 # gossip control-plane grid (scheme x runtime x fanout x peers,
//!                              # paired centralized runs) -> BENCH_gossip.json
//! repro fuzz [--seed-batch ci | --seed N] [--count N]
//!                              # scenario fuzzer: seeded random churn plans over random
//!                              # (workload x scheme x control plane) configs, run on sim +
//!                              # loopback and checked against the invariant oracles; failing
//!                              # plans shrink to minimal repros under results/fuzz_repros/
//! repro fuzz --replay <file>   # re-run one saved minimal repro and compare its violations
//! repro all [--full]           # everything above
//! ```
//!
//! Results are printed as text tables and also written as JSON under
//! `results/` for EXPERIMENTS.md. `repro runtimes` additionally writes the
//! machine-readable `BENCH_runtimes.json` into the working directory; CI
//! uploads it as a workflow artifact on every PR (the perf trajectory).
//! `repro hotpath` likewise writes `BENCH_hotpath.json` and fails (exit 1)
//! when the blocked kernel falls below the scalar reference on the n = 64
//! obstacle cell — the CI smoke assertion for the hot-path overhaul.

use bench_suite::{
    format_ablation, format_churn_grid, format_contention, format_gossip, format_hotpath,
    format_runtime_matrix, format_scale_curve, format_table1, run_ablation, run_churn_grid,
    run_contention, run_figure, run_gossip_grid, run_hotpath, run_runtime_matrix, run_scale_curve,
    run_table1, FigureConfig,
};
use p2pdc::format_table;

// Counting the hot path's heap traffic requires owning the process's global
// allocator; with it installed, the allocs/bytes columns of `repro hotpath`
// are real measurements instead of zeros.
#[global_allocator]
static COUNTING: p2pdc::allocs::CountingAllocator = p2pdc::allocs::CountingAllocator;

fn write_json_to(path: &str, value: &impl serde::Serialize) {
    match serde_json::to_string_pretty(value) {
        Ok(body) => match std::fs::write(path, body) {
            Ok(()) => eprintln!("(wrote {path})"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        },
        Err(e) => eprintln!("could not serialize {path}: {e}"),
    }
}

fn write_json(name: &str, value: &impl serde::Serialize) {
    let _ = std::fs::create_dir_all("results");
    write_json_to(&format!("results/{name}.json"), value);
}

fn run_fig(which: u8, full: bool) {
    let (config, paper_label) = match which {
        5 => (FigureConfig::figure5(full), "96x96x96"),
        _ => (FigureConfig::figure6(full), "144x144x144"),
    };
    let title = format!(
        "Figure {which}: obstacle problem {paper_label} (simulated at {n}^3, granularity-preserving compute model)",
        n = config.n
    );
    eprintln!("running {title} ...");
    let result = run_figure(&title, &config);
    println!("{}", format_table(&result.title, &result.rows));
    write_json(
        &format!("fig{which}{}", if full { "_full" } else { "" }),
        &result,
    );
}

fn run_runtimes_with_scale(scale: bool, full: bool) {
    eprintln!("running the (workload x scheme x runtime) matrix ...");
    let mut result = run_runtime_matrix();
    println!("{}", format_runtime_matrix(&result));
    if scale {
        eprintln!(
            "running the reactor peer-scaling curve ({}) ...",
            if full {
                "64/256/1024 + churn"
            } else {
                "64/256"
            }
        );
        result.scale = run_scale_curve(full);
        println!("{}", format_scale_curve(&result.scale));
    }
    write_json("runtimes", &result);
    // The perf-trajectory artifact CI uploads on every PR.
    write_json_to("BENCH_runtimes.json", &result);
    if !result.rows.iter().all(|r| r.converged) {
        eprintln!("WARNING: a (workload, runtime) cell failed to converge");
        std::process::exit(1);
    }
    if !result.scale.iter().all(|r| r.converged) {
        eprintln!("WARNING: a peer-scaling cell failed to converge");
        std::process::exit(1);
    }
}

fn run_churn() {
    eprintln!("running the churn grid (workload x scheme x runtime x churn level) ...");
    let result = run_churn_grid();
    println!("{}", format_churn_grid(&result));
    write_json("churn", &result);
    // Uploaded alongside BENCH_runtimes.json as a perf-trajectory artifact.
    write_json_to("BENCH_churn.json", &result);
    if !result.rows.iter().all(|r| r.converged) {
        eprintln!("WARNING: a churn cell failed to converge");
        std::process::exit(1);
    }
}

fn run_hotpath_grid() {
    eprintln!("running the hot-path grid (kernel / encode / end-to-end) ...");
    let result = run_hotpath();
    println!("{}", format_hotpath(&result));
    write_json("hotpath", &result);
    // Uploaded alongside BENCH_runtimes.json as a perf-trajectory artifact.
    write_json_to("BENCH_hotpath.json", &result);
    // Smoke assertion: the blocked kernel must not lose to the scalar
    // reference on the n = 64 obstacle cell.
    let points = |kernel: &str| {
        result
            .kernel
            .iter()
            .find(|r| r.n == 64 && r.kernel == kernel)
            .map(|r| r.points_per_sec)
    };
    if let (Some(blocked), Some(scalar)) = (points("blocked"), points("scalar")) {
        if blocked < scalar {
            eprintln!(
                "WARNING: blocked kernel slower than scalar at n=64 \
                 ({blocked:.0} vs {scalar:.0} points/sec)"
            );
            std::process::exit(1);
        }
    }
}

fn run_contention_grid(full: bool) {
    eprintln!("running the control-plane contention grid (instrumented lock counters) ...");
    let result = run_contention(full);
    println!("{}", format_contention(&result));
    write_json("contention", &result);
    // Uploaded alongside BENCH_runtimes.json as a perf-trajectory artifact.
    write_json_to("BENCH_contention.json", &result);
    // Smoke assertion 1: the instrumented hot sweep must never touch the
    // detector or volatility mutex on its per-sweep paths.
    let h = &result.hot_sweep;
    if h.detector_report_locks != 0 || h.volatility_sweep_locks != 0 {
        eprintln!(
            "WARNING: hot sweep acquired per-sweep locks \
             (report path {}, volatility gates {}) over {} relaxations",
            h.detector_report_locks, h.volatility_sweep_locks, h.relaxations
        );
        std::process::exit(1);
    }
    // Smoke assertion 2: loop rebalancing must not regress the 256-peer
    // point against its own static-shard baseline.
    let pps = |rebalance: bool| {
        result
            .rows
            .iter()
            .find(|r| r.peers == 256 && !r.churn && r.rebalance == rebalance)
            .map(|r| r.points_per_sec)
    };
    if let (Some(on), Some(off)) = (pps(true), pps(false)) {
        if on < 0.8 * off {
            eprintln!(
                "WARNING: loop rebalancing regresses the 256-peer reactor row \
                 ({on:.0} vs {off:.0} points/sec)"
            );
            std::process::exit(1);
        }
    }
    if !result.rows.iter().all(|r| r.converged) {
        eprintln!("WARNING: a contention cell failed to converge");
        std::process::exit(1);
    }
}

fn run_gossip() {
    eprintln!("running the gossip control-plane grid (scheme x runtime x fanout x peers) ...");
    let result = run_gossip_grid();
    println!("{}", format_gossip(&result));
    write_json("gossip", &result);
    // Uploaded alongside BENCH_runtimes.json as a perf-trajectory artifact.
    write_json_to("BENCH_gossip.json", &result);
    if !result.rows.iter().all(|r| r.converged) {
        eprintln!("WARNING: a gossip cell failed to converge");
        std::process::exit(1);
    }
    // Smoke assertion: SWIM failure detection must stay within 5x of the
    // centralized missed-ping sweep on every paired churn cell. Latencies
    // under the protocol's own escalation floor are exempt: suspicion takes
    // two ack windows plus the suspicion timeout by design (~100 ms under
    // the wall-clock timings), so at toy cell sizes — where one 10 ms ping
    // sweep catches the crash centrally — the ratio alone would flag the
    // ladder working exactly as specified.
    const SWIM_FLOOR_S: f64 = 0.25;
    for gossip in result
        .rows
        .iter()
        .filter(|r| r.control == "gossip" && r.churn && r.detection_latency_s > SWIM_FLOOR_S)
    {
        let centralized = result.rows.iter().find(|r| {
            r.control == "centralized"
                && r.churn
                && r.peers == gossip.peers
                && r.runtime == gossip.runtime
                && r.scheme == gossip.scheme
        });
        if let Some(c) = centralized {
            if c.detection_latency_s > 0.0
                && gossip.detection_latency_s > 5.0 * c.detection_latency_s
            {
                eprintln!(
                    "WARNING: gossip detection latency on {} at {} peers is {:.3}s \
                     vs centralized {:.3}s (> 5x)",
                    gossip.runtime, gossip.peers, gossip.detection_latency_s, c.detection_latency_s
                );
                std::process::exit(1);
            }
        }
    }
}

/// The pinned master seed and batch size of `repro fuzz --seed-batch ci`
/// (the CI fuzz-smoke job): ≥ 40 plans covering the full
/// (workload × scheme × control plane) grid at least twice.
const CI_FUZZ_SEED: u64 = 42;
const CI_FUZZ_COUNT: usize = 40;

fn run_fuzz(args: &[String]) {
    use p2pdc::scenario::{check_case, fuzz};

    // --replay <file>: re-run one saved minimal repro.
    if let Some(at) = args.iter().position(|a| a == "--replay") {
        let Some(path) = args.get(at + 1) else {
            eprintln!("--replay needs a file path");
            std::process::exit(2);
        };
        let repro = match fuzz::load_repro(std::path::Path::new(path)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        eprintln!("replaying {} ({})", path, repro.case.label());
        let violations = check_case(&repro.case);
        for v in &violations {
            println!("[{}] {}", v.oracle, v.detail);
        }
        if violations == repro.violations {
            eprintln!("replay reproduced the saved violations exactly");
            std::process::exit(if violations.is_empty() { 0 } else { 1 });
        }
        eprintln!(
            "replay DIVERGED from the saved violations (saved {:?})",
            repro.violations
        );
        std::process::exit(1);
    }

    let seed = if args.iter().any(|a| a == "--seed-batch") {
        CI_FUZZ_SEED
    } else {
        args.iter()
            .position(|a| a == "--seed")
            .and_then(|at| args.get(at + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(CI_FUZZ_SEED)
    };

    // --only <index>: debug one generated case with per-backend timing and
    // the raw measurements (the batch only prints oracle verdicts).
    if let Some(at) = args.iter().position(|a| a == "--only") {
        let Some(index) = args.get(at + 1).and_then(|s| s.parse().ok()) else {
            eprintln!("--only needs a case index");
            std::process::exit(2);
        };
        let case = fuzz::generate_case(seed, index);
        eprintln!("case {index:03} {}", case.label());
        eprintln!("{}", serde_json::to_string_pretty(&case).unwrap());
        let workload = case.workload.build(case.size, case.peers);
        let config = case.config();
        for kind in [p2pdc::RuntimeKind::Sim, p2pdc::RuntimeKind::Loopback] {
            let start = std::time::Instant::now();
            let result = p2pdc::run_on(workload.as_ref(), &config, kind);
            let m = &result.measurement;
            eprintln!(
                "  {kind:?}: {:.2?} wall, converged={} residual={:.3e} relax={:?} crashes={} recoveries={} joins={} repartitions={}",
                start.elapsed(),
                m.converged,
                m.residual,
                m.relaxations_per_peer,
                m.crashes,
                m.recoveries,
                m.joins,
                m.repartitions,
            );
        }
        let mut counter = config.clone();
        counter.control_plane = case.counterpart_control();
        let start = std::time::Instant::now();
        let result = p2pdc::run_on(workload.as_ref(), &counter, p2pdc::RuntimeKind::Loopback);
        let m = &result.measurement;
        eprintln!(
            "  Loopback/{:?}: {:.2?} wall, converged={} residual={:.3e} relax={:?} crashes={} recoveries={} joins={} repartitions={}",
            counter.control_plane,
            start.elapsed(),
            m.converged,
            m.residual,
            m.relaxations_per_peer,
            m.crashes,
            m.recoveries,
            m.joins,
            m.repartitions,
        );
        let violations = check_case(&case);
        for v in &violations {
            println!("[{}] {}", v.oracle, v.detail);
        }
        if !violations.is_empty() && args.iter().any(|a| a == "--shrink") {
            let start = std::time::Instant::now();
            let shrunk = fuzz::shrink(&case);
            eprintln!(
                "  shrink: {:.2?} wall, {} -> {} events",
                start.elapsed(),
                case.plan.events.len(),
                shrunk.plan.events.len()
            );
            eprintln!("{}", serde_json::to_string_pretty(&shrunk.plan).unwrap());
        }
        std::process::exit(if violations.is_empty() { 0 } else { 1 });
    }
    let count = args
        .iter()
        .position(|a| a == "--count")
        .and_then(|at| args.get(at + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(CI_FUZZ_COUNT);

    eprintln!("fuzzing {count} scenario plans from master seed {seed} (sim + loopback) ...");
    let outcome = fuzz::run_batch(seed, count, &mut |index, case, violations| {
        if violations.is_empty() {
            eprintln!("  case {index:03} ok       {}", case.label());
        } else {
            eprintln!("  case {index:03} FAILED   {}", case.label());
            for v in violations {
                eprintln!("           [{}] {}", v.oracle, v.detail);
            }
        }
    });
    write_json("fuzz", &outcome);
    if outcome.failures.is_empty() {
        eprintln!("all {count} plans hold every oracle");
        return;
    }
    let dir = std::path::Path::new("results/fuzz_repros");
    for failure in &outcome.failures {
        eprintln!(
            "case {:03} shrank from {} to {} events; violations: {}",
            failure.index,
            failure.case.plan.events.len(),
            failure.shrunk.plan.events.len(),
            failure
                .shrunk_violations
                .iter()
                .map(|v| v.oracle.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        match fuzz::save_repro(dir, failure) {
            Ok(path) => eprintln!("  minimal repro saved to {}", path.display()),
            Err(e) => eprintln!("  could not save the repro: {e}"),
        }
    }
    eprintln!(
        "WARNING: {} of {count} plans violated an oracle",
        outcome.failures.len()
    );
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(|s| s.as_str()).unwrap_or("all");
    let full = args.iter().any(|a| a == "--full");

    match command {
        "table1" => {
            let rows = run_table1();
            println!("{}", format_table1(&rows));
            write_json("table1", &rows);
            if !rows.iter().all(|r| r.matches_paper) {
                eprintln!("WARNING: controller decisions deviate from the paper's Table I");
                std::process::exit(1);
            }
        }
        "fig5" => run_fig(5, full),
        "fig6" => run_fig(6, full),
        "ablation" => {
            let rows = run_ablation();
            println!("{}", format_ablation(&rows));
            write_json("ablation", &rows);
        }
        "runtimes" => run_runtimes_with_scale(false, false),
        "scale" => run_runtimes_with_scale(true, full),
        "churn" => run_churn(),
        "hotpath" => run_hotpath_grid(),
        "contention" => run_contention_grid(full),
        "gossip" => run_gossip(),
        "fuzz" => run_fuzz(&args[1..]),
        "all" => {
            let rows = run_table1();
            println!("{}", format_table1(&rows));
            write_json("table1", &rows);
            run_fig(5, full);
            run_fig(6, full);
            let ablation = run_ablation();
            println!("{}", format_ablation(&ablation));
            write_json("ablation", &ablation);
            run_runtimes_with_scale(true, full);
            run_churn();
            run_hotpath_grid();
            run_contention_grid(full);
            run_gossip();
        }
        other => {
            eprintln!(
                "unknown command '{other}'; expected table1 | fig5 | fig6 | ablation | runtimes | scale | churn | hotpath | contention | gossip | fuzz | all"
            );
            std::process::exit(2);
        }
    }
}
