//! Bench: one obstacle scenario timed on each runtime backend (sim, threads,
//! loopback, udp). The interesting quantity is the harness overhead each
//! substrate adds around the identical `PeerEngine` work — loopback is the
//! floor, UDP shows the real kernel socket cost.

use bench_suite::{run_runtime_once, RuntimeMatrixScenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pdc::{RuntimeKind, Scheme};

fn bench_runtime_matrix(c: &mut Criterion) {
    let scenario = RuntimeMatrixScenario {
        n: 8,
        peers: 2,
        tolerance: 1e-3,
        seed: 42,
    };
    let mut group = c.benchmark_group("runtime_matrix");
    group.sample_size(10);
    for runtime in RuntimeKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("sync_obstacle", runtime.label()),
            &runtime,
            |b, &runtime| {
                b.iter(|| run_runtime_once(&scenario, runtime, Scheme::Synchronous));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_matrix);
criterion_main!(benches);
