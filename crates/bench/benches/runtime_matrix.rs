//! Bench: every workload timed on each runtime backend (sim, threads,
//! loopback, udp) under the synchronous scheme. The interesting quantity is
//! the harness overhead each substrate adds around the identical
//! `PeerEngine` work — loopback is the floor, UDP shows the real kernel
//! socket cost — and how it scales across communication patterns (ghost
//! planes, ghost rows, rank-mass vectors).

use bench_suite::{run_runtime_once, RuntimeMatrixScenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pdc::{RuntimeKind, Scheme, WorkloadKind};

fn bench_runtime_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_matrix");
    group.sample_size(10);
    for workload in WorkloadKind::ALL {
        // Bench-sized scenario, smaller than the CI artifact run.
        let scenario = RuntimeMatrixScenario::quick(workload);
        for runtime in RuntimeKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("sync_{}", workload.label()), runtime.label()),
                &runtime,
                |b, &runtime| {
                    b.iter(|| run_runtime_once(&scenario, runtime, Scheme::Synchronous));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_matrix);
criterion_main!(benches);
