//! Micro-benchmark: congestion-control window dynamics. Measures the cost of
//! the per-ack bookkeeping for each algorithm and reports (via the
//! `window_growth` group) how fast each algorithm re-opens its window on a
//! 100 ms path after a loss — the property motivating H-TCP for inter-cluster
//! links.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2psap::data::make_congestion;
use p2psap::CongestionAlgorithm;

fn drive(algorithm: CongestionAlgorithm, acks: usize, loss_every: usize) -> f64 {
    let mut cc = make_congestion(algorithm);
    let rtt = 0.1;
    let mut now = 0.0;
    for i in 0..acks {
        now += rtt;
        cc.on_ack(rtt, now);
        if loss_every > 0 && i % loss_every == loss_every - 1 {
            cc.on_loss(now);
        }
    }
    cc.cwnd()
}

fn bench_congestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion_control");
    for algorithm in [
        CongestionAlgorithm::NewReno,
        CongestionAlgorithm::HTcp,
        CongestionAlgorithm::Tahoe,
        CongestionAlgorithm::Scp,
    ] {
        group.bench_with_input(
            BenchmarkId::new("ack_clock_10k", format!("{algorithm:?}")),
            &algorithm,
            |b, &alg| b.iter(|| std::hint::black_box(drive(alg, 10_000, 2_000))),
        );
    }
    group.finish();

    // Report the final windows once so the shape (H-TCP >> New-Reno on long
    // loss-free periods over a 100 ms path) is visible in the bench output.
    for algorithm in [CongestionAlgorithm::NewReno, CongestionAlgorithm::HTcp] {
        let cwnd = drive(algorithm, 3_000, 0);
        eprintln!("window after 3000 RTTs without loss ({algorithm:?}): {cwnd:.1} segments");
    }
}

criterion_group!(benches, bench_congestion);
criterion_main!(benches);
