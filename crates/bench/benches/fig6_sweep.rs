//! Criterion wrapper around the Figure 6 experiment (144³ obstacle problem,
//! scaled). Times the granularity effect the paper highlights: the same
//! configurations as Figure 5 but with the larger per-peer work share, so the
//! synchronous/asynchronous gap narrows. The full figure is produced by
//! `cargo run -p bench-suite --bin repro -- fig6`.

use bench_suite::{run_figure_filtered, FigureConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pdc::Scheme;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6_configurations");
    group.sample_size(10);
    let config = FigureConfig {
        n: 24,
        ..FigureConfig::figure6(false)
    };
    for (label, scheme, clusters) in [
        ("synchronous/2-clusters", Scheme::Synchronous, 2usize),
        ("asynchronous/2-clusters", Scheme::Asynchronous, 2),
        ("hybrid/2-clusters", Scheme::Hybrid, 2),
    ] {
        group.bench_with_input(BenchmarkId::new("run", label), &label, |b, _| {
            b.iter(|| {
                let result = run_figure_filtered("fig6-bench", &config, |s, cl, peers| {
                    s == scheme && cl == clusters && peers == 8
                });
                std::hint::black_box(result.rows.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
