//! Ablation bench: the cost of deviating from the Table I decisions on an
//! emulated lossy 100 ms inter-cluster path (reliable vs unreliable channels,
//! synchronous vs asynchronous completion), measured at the session level.

use bench_suite::run_ablation;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2psap::{ChannelConfig, Session};

fn bench_ablation(c: &mut Criterion) {
    // The headline comparison is printed once (latency per variant).
    for row in run_ablation() {
        eprintln!(
            "{:<55} send latency {:>8.2} ms, wire segments {:>4}",
            row.variant, row.sync_send_latency_ms, row.wire_segments
        );
    }

    // Criterion measurement: per-send protocol cost of each configuration.
    let mut group = c.benchmark_group("ablation_channel_configs");
    for (label, cfg) in [
        ("async_unreliable", ChannelConfig::asynchronous_unreliable()),
        ("async_reliable", ChannelConfig::asynchronous_reliable()),
        ("sync_reliable", ChannelConfig::synchronous_reliable()),
    ] {
        group.bench_with_input(BenchmarkId::new("send_recv", label), &cfg, |b, cfg| {
            let mut tx = Session::new(*cfg);
            let mut rx = Session::new(*cfg);
            let payload = Bytes::from(vec![0u8; 2048]);
            let mut now = 0u64;
            b.iter(|| {
                now += 1_000;
                let (_, out) = tx.send(payload.clone(), now);
                let mut delivered = 0;
                for seg in out.wire {
                    let rx_out = rx.on_wire(seg, now + 500);
                    delivered += rx_out.delivered.len();
                    for ack in rx_out.wire {
                        let _ = tx.on_wire(ack, now + 900);
                    }
                }
                std::hint::black_box(delivered)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
