//! Bench: the per-sweep control-plane report path, locked baseline vs
//! lock-free report cells. Single-threaded cells measure the bare cost of
//! one dirty report (cell: a seqlock publish; locked: a mutex acquisition
//! plus a detector fold). Multi-threaded cells put every rank on its own
//! thread hammering reports concurrently — the contended regime the
//! reactor's event loops live in, where the mutex serializes all peers and
//! the cells don't.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pdc::runtime::report_cell::set_force_locked;
use p2pdc::ConvergenceDetector;
use p2psap::Scheme;

/// Reports each publishing thread makes per bench iteration.
const REPORTS: u64 = 1000;

fn bench_control_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("control_plane");
    group.sample_size(20);

    for (path, forced) in [("cell", false), ("locked", true)] {
        group.bench_with_input(
            BenchmarkId::new("report_single_thread", path),
            &forced,
            |b, &forced| {
                let shared = ConvergenceDetector::shared(1e-9, Scheme::Asynchronous, 8);
                set_force_locked(forced);
                let mut iteration = 0u64;
                b.iter(|| {
                    iteration += 1;
                    // A dirty report (diff above tolerance) with its load
                    // sample — the common not-yet-converged sweep.
                    shared.publish(0, iteration, 1.0, false, iteration, 0, 4, 100)
                });
                set_force_locked(false);
            },
        );
    }

    for threads in [4usize, 8] {
        for (path, forced) in [("cell", false), ("locked", true)] {
            group.bench_with_input(
                BenchmarkId::new(format!("report_{threads}_threads"), path),
                &forced,
                |b, &forced| {
                    let shared = ConvergenceDetector::shared(1e-9, Scheme::Asynchronous, threads);
                    set_force_locked(forced);
                    b.iter(|| {
                        std::thread::scope(|scope| {
                            for rank in 0..threads {
                                let shared = &shared;
                                scope.spawn(move || {
                                    for iteration in 1..=REPORTS {
                                        shared.publish(
                                            rank, iteration, 1.0, false, iteration, 0, 4, 100,
                                        );
                                    }
                                });
                            }
                        });
                    });
                    set_force_locked(false);
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_control_plane);
criterion_main!(benches);
