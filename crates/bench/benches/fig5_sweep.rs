//! Criterion wrapper around the Figure 5 experiment (96³ obstacle problem,
//! scaled): times representative (scheme × topology) configurations at a
//! fixed peer count so regressions in the distributed runtime show up in CI.
//! The full figure is produced by `cargo run -p bench-suite --bin repro -- fig5`.

use bench_suite::{run_figure_filtered, FigureConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2pdc::Scheme;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5_configurations");
    group.sample_size(10);
    // A reduced grid keeps each Criterion sample fast; the compute model still
    // preserves the paper's granularity ratio.
    let config = FigureConfig {
        n: 16,
        ..FigureConfig::figure5(false)
    };
    for (label, scheme, clusters) in [
        ("synchronous/1-cluster", Scheme::Synchronous, 1usize),
        ("asynchronous/1-cluster", Scheme::Asynchronous, 1),
        ("synchronous/2-clusters", Scheme::Synchronous, 2),
        ("asynchronous/2-clusters", Scheme::Asynchronous, 2),
        ("hybrid/2-clusters", Scheme::Hybrid, 2),
    ] {
        group.bench_with_input(BenchmarkId::new("run", label), &label, |b, _| {
            b.iter(|| {
                let result = run_figure_filtered("fig5-bench", &config, |s, cl, peers| {
                    s == scheme && cl == clusters && peers == 8
                });
                std::hint::black_box(result.rows.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
