//! Benchmark of the self-adaptation machinery (Table I): the cost of a
//! controller decision and of a full data-channel reconfiguration (plan +
//! micro-protocol substitution), which bounds how cheaply P2PSAP can react to
//! context changes.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::ConnectionType;
use p2psap::data::{apply_reconfiguration, build_transport, plan_reconfiguration};
use p2psap::{ChannelConfig, Controller, Scheme, Session, SocketOption};

fn bench_adaptation(c: &mut Criterion) {
    let controller = Controller::with_table1_rules();
    c.bench_function("controller_decision", |b| {
        b.iter(|| {
            let cfg = controller.decide_for(
                std::hint::black_box(Scheme::Hybrid),
                std::hint::black_box(ConnectionType::InterCluster),
            );
            std::hint::black_box(cfg)
        })
    });

    c.bench_function("reconfiguration_plan_and_apply", |b| {
        let from = ChannelConfig::synchronous_reliable();
        let to = ChannelConfig::asynchronous_unreliable();
        b.iter(|| {
            let mut composite = build_transport(from);
            let plan = plan_reconfiguration(from, to);
            apply_reconfiguration(&mut composite, &plan);
            std::hint::black_box(composite.micro_count())
        })
    });

    c.bench_function("session_full_reconfigure", |b| {
        b.iter(|| {
            let mut session = Session::new(ChannelConfig::synchronous_reliable());
            session.reconfigure(ChannelConfig::asynchronous_unreliable());
            std::hint::black_box(session.transport_micros().len())
        })
    });

    c.bench_function("socket_context_change_proposal", |b| {
        b.iter(|| {
            let mut socket = p2psap::Socket::open(Scheme::Hybrid, ConnectionType::IntraCluster);
            let out = socket.set_option(SocketOption::Connection(ConnectionType::InterCluster));
            std::hint::black_box(out.control.len())
        })
    });
}

criterion_group!(benches, bench_adaptation);
criterion_main!(benches);
