//! Micro-benchmark: per-message overhead of the Cactus protocol stack
//! (zero-copy send path), compared with a payload-copying baseline. This
//! quantifies the benefit of the paper's "pointer passing between layers"
//! modification.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p2psap::{ChannelConfig, Session};

fn bench_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_stack");
    for &size in &[1_024usize, 8_192, 73_728 /* one 96x96 plane */] {
        let payload = Bytes::from(vec![7u8; size]);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("session_send_zero_copy", size),
            &size,
            |b, _| {
                let mut session = Session::new(ChannelConfig::asynchronous_unreliable());
                let mut now = 0u64;
                b.iter(|| {
                    now += 1;
                    let (_, out) = session.send(payload.clone(), now);
                    std::hint::black_box(out.wire.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_payload_copy", size),
            &size,
            |b, _| {
                // What a copying stack would pay per layer crossing (2 layers).
                b.iter(|| {
                    let copy1 = payload.to_vec();
                    let copy2 = copy1.clone();
                    std::hint::black_box(copy2.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stack);
criterion_main!(benches);
