//! Micro-benchmark: per-message overhead of the Cactus protocol stack
//! (zero-copy send path), compared with a payload-copying baseline. This
//! quantifies the benefit of the paper's "pointer passing between layers"
//! modification.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p2pdc::app::FrameSink;
use p2pdc::{HeatTask, IterativeTask, ObstacleTask, PageRankGraph, PageRankTask};
use p2psap::{ChannelConfig, Session};
use std::sync::Arc;

fn bench_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_stack");
    for &size in &[1_024usize, 8_192, 73_728 /* one 96x96 plane */] {
        let payload = Bytes::from(vec![7u8; size]);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("session_send_zero_copy", size),
            &size,
            |b, _| {
                let mut session = Session::new(ChannelConfig::asynchronous_unreliable());
                let mut now = 0u64;
                b.iter(|| {
                    now += 1;
                    let (_, out) = session.send(payload.clone(), now);
                    std::hint::black_box(out.wire.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_payload_copy", size),
            &size,
            |b, _| {
                // What a copying stack would pay per layer crossing (2 layers).
                b.iter(|| {
                    let copy1 = payload.to_vec();
                    let copy2 = copy1.clone();
                    std::hint::black_box(copy2.len())
                });
            },
        );
    }
    group.finish();
}

/// Ghost-update serialization: the legacy per-exchange allocation chain
/// (`outgoing()` payload `Vec`s + a fresh wire `Vec` per frame for the
/// generation tag) against `encode_outgoing` into a warm pooled `FrameSink`
/// — the zero-copy path the engine now drives.
fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ghost_encode");
    let tasks: Vec<(&str, Box<dyn IterativeTask>)> = vec![
        (
            "obstacle64",
            Box::new(ObstacleTask::new(
                Arc::new(obstacle::ObstacleProblem::membrane(64)),
                4,
                1,
            )),
        ),
        ("heat512", Box::new(HeatTask::new(512, 4, 1))),
        (
            "pagerank120k",
            Box::new(PageRankTask::new(
                Arc::new(PageRankGraph::ring_with_chords(120_000)),
                4,
                1,
            )),
        ),
    ];
    for (label, mut task) in tasks {
        task.relax();
        let frame_bytes: usize = task.outgoing().iter().map(|(_, p)| 4 + p.len()).sum();
        group.throughput(Throughput::Bytes(frame_bytes as u64));
        group.bench_with_input(BenchmarkId::new("legacy_alloc", label), &label, |b, _| {
            b.iter(|| {
                for (dst, payload) in task.outgoing() {
                    let mut wire = Vec::with_capacity(4 + payload.len());
                    wire.extend_from_slice(&7u32.to_le_bytes());
                    wire.extend_from_slice(&payload);
                    std::hint::black_box((dst, wire.len()));
                }
            });
        });
        let mut sink = FrameSink::new();
        group.bench_with_input(BenchmarkId::new("zero_copy_sink", label), &label, |b, _| {
            b.iter(|| {
                sink.begin(7);
                task.encode_outgoing(&mut sink);
                std::hint::black_box(sink.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stack, bench_encode);
criterion_main!(benches);
