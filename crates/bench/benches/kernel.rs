//! Micro-benchmark: throughput of the projected Richardson relaxation kernel
//! (points relaxed per second), the quantity the compute model is calibrated
//! from — plus the blocked-vs-scalar comparison of the per-peer
//! [`NodeState`] kernels that the distributed runtimes actually execute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use obstacle::{initial_iterate, sweep, BlockDecomposition, NodeState, ObstacleProblem};

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("richardson_kernel");
    for n in [16usize, 32, 48] {
        let problem = ObstacleProblem::membrane(n);
        let u = initial_iterate(&problem);
        let mut next = vec![0.0; problem.len()];
        let delta = problem.optimal_delta();
        group.throughput(Throughput::Elements(problem.len() as u64));
        group.bench_with_input(BenchmarkId::new("sweep", n), &n, |b, _| {
            b.iter(|| sweep(&problem, std::hint::black_box(&u), &mut next, delta));
        });
    }
    group.finish();
}

/// The hot-path comparison: the shipping cache-blocked, branch-free
/// `NodeState::sweep` against the per-point `sweep_scalar` reference, on the
/// single-peer block (full grid per sweep).
fn bench_node_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_kernel");
    for n in [32usize, 64, 96] {
        let problem = ObstacleProblem::membrane(n);
        let decomp = BlockDecomposition::balanced(n, 1);
        let delta = problem.optimal_delta();
        let mut state = NodeState::new(&problem, &decomp, 0);
        group.throughput(Throughput::Elements(state.local_len() as u64));
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(state.sweep(&problem, delta)));
        });
        let mut state = NodeState::new(&problem, &decomp, 0);
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(state.sweep_scalar(&problem, delta)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel, bench_node_kernels);
criterion_main!(benches);
