//! Micro-benchmark: throughput of the projected Richardson relaxation kernel
//! (points relaxed per second), the quantity the compute model is calibrated
//! from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use obstacle::{initial_iterate, sweep, ObstacleProblem};

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("richardson_kernel");
    for n in [16usize, 32, 48] {
        let problem = ObstacleProblem::membrane(n);
        let u = initial_iterate(&problem);
        let mut next = vec![0.0; problem.len()];
        let delta = problem.optimal_delta();
        group.throughput(Throughput::Elements(problem.len() as u64));
        group.bench_with_input(BenchmarkId::new("sweep", n), &n, |b, _| {
            b.iter(|| sweep(&problem, std::hint::black_box(&u), &mut next, delta));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
