//! Property-based tests for the discrete-event simulation engine.

use desim::{Context, Payload, Process, ProcessId, RngFactory, SimDuration, SimTime, Simulator};
use proptest::prelude::*;
use rand::RngCore;
use std::sync::{Arc, Mutex};

/// A process that records the delivery time of every message it receives into
/// a shared log, so tests can assert global ordering properties after the run.
struct Recorder {
    log: Arc<Mutex<Vec<(u64, u64)>>>, // (delivery time ns, message tag)
}

impl Process for Recorder {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, payload: Payload) {
        let tag = *payload.downcast::<u64>().expect("u64 tag");
        self.log.lock().unwrap().push((ctx.now().as_nanos(), tag));
    }
    fn name(&self) -> String {
        "recorder".into()
    }
}

proptest! {
    /// Messages are always delivered in non-decreasing time order, and
    /// messages injected for the same instant preserve injection order.
    #[test]
    fn delivery_is_time_ordered(delays in proptest::collection::vec(0u64..5_000, 1..64)) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulator::new(0);
        let p = sim.add_process(Box::new(Recorder { log: Arc::clone(&log) }));
        for (tag, d) in delays.iter().enumerate() {
            sim.inject(p, Box::new(tag as u64), SimTime::from_nanos(*d));
        }
        sim.run();
        let log = log.lock().unwrap();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "delivery times must be non-decreasing");
            if w[0].0 == w[1].0 {
                // FIFO among same-instant events: injection order == tag order
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    /// Two simulations with identical seeds and inputs produce identical
    /// event counts and final clocks (determinism).
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), n in 1usize..32) {
        let run = |seed: u64| {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Simulator::new(seed);
            let p = sim.add_process(Box::new(Recorder { log: Arc::clone(&log) }));
            for i in 0..n {
                sim.inject(p, Box::new(i as u64), SimTime::from_nanos((i as u64 + 1) * 17));
            }
            sim.run();
            let entries = log.lock().unwrap().clone();
            (sim.events_processed(), sim.now().as_nanos(), entries)
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// RNG streams are reproducible and independent of other stream indices.
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), idx in 0u64..1000) {
        let f1 = RngFactory::new(seed);
        let f2 = RngFactory::new(seed);
        let mut a = f1.stream(idx);
        let mut b = f2.stream(idx);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

/// A pair of processes exchanging a fixed number of ping-pong rounds; checks
/// that virtual time equals rounds × round-trip latency.
struct PingPong {
    peer: Option<ProcessId>,
    rounds_left: u64,
    one_way: SimDuration,
}

impl Process for PingPong {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let Some(peer) = self.peer {
            ctx.send_delayed(peer, Box::new(self.rounds_left), self.one_way);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, payload: Payload) {
        let remaining = *payload.downcast::<u64>().expect("u64");
        if remaining > 0 {
            ctx.send_delayed(from, Box::new(remaining - 1), self.one_way);
        }
    }
}

proptest! {
    #[test]
    fn ping_pong_time_is_exact(rounds in 1u64..50, one_way_us in 1u64..10_000) {
        let one_way = SimDuration::from_micros(one_way_us);
        let mut sim = Simulator::new(5);
        let a = sim.add_process(Box::new(PingPong { peer: None, rounds_left: 0, one_way }));
        sim.add_process(Box::new(PingPong { peer: Some(a), rounds_left: rounds, one_way }));
        sim.run();
        // initial send + `rounds` replies, each taking one_way
        let expected = one_way.as_nanos() * (rounds + 1);
        prop_assert_eq!(sim.now().as_nanos(), expected);
    }
}
