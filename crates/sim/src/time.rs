//! Virtual time for the discrete-event simulator.
//!
//! Time is kept as an integer number of nanoseconds so that event ordering is
//! exact and the simulation is bit-for-bit reproducible across runs and
//! platforms. [`SimTime`] is a point on the virtual time line, [`SimDuration`]
//! a distance between two points.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in nanoseconds since the start of the
/// simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Construct from seconds expressed as a float (rounded to nanoseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "SimTime cannot be negative");
        SimTime((s * 1e9).round() as u64)
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Millis since simulation start as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from seconds expressed as a float (rounded to nanoseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "SimDuration cannot be negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiply by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (rounded); factor must be non-negative.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0, "scale factor must be non-negative");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_nanos(500);
        assert_eq!((t + d).as_nanos(), 2_000);
        assert_eq!((t - d).as_nanos(), 1_000);
        assert_eq!((t + d) - t, SimDuration::from_nanos(500));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimTime::from_secs_f64(1.25).as_nanos(), 1_250_000_000);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(b.saturating_since(a).as_nanos(), 10);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.26).as_nanos(), 13);
        assert_eq!(d.mul_f64(0.0).as_nanos(), 0);
    }

    #[test]
    #[should_panic]
    fn negative_float_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
