//! The simulation scheduler: owns the clock, the event queue, the processes
//! and drives handler execution.

use crate::event::{EventId, EventKind, EventQueue, Payload, TimerId};
use crate::process::{Process, ProcessId};
use crate::rng::RngFactory;
use crate::time::{SimDuration, SimTime};
use crate::trace::Tracer;
use rand_chacha::ChaCha8Rng;

/// Outcome of a call to [`Simulator::run`] / [`Simulator::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    QueueEmpty,
    /// A halt event was processed or a process requested a halt.
    Halted,
    /// The time / event-count limit was reached before the queue drained.
    LimitReached,
}

/// Handle through which process callbacks interact with the simulator.
pub struct Context<'a> {
    now: SimTime,
    me: ProcessId,
    queue: &'a mut EventQueue,
    rng: &'a mut ChaCha8Rng,
    tracer: &'a mut Tracer,
    halt: &'a mut bool,
    name: &'a str,
}

impl<'a> Context<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Identity of the process whose handler is running.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Deterministic RNG stream private to this process.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }

    /// Send a message delivered at the current instant (after already-queued
    /// events for this instant).
    pub fn send(&mut self, to: ProcessId, payload: Payload) {
        self.send_delayed(to, payload, SimDuration::ZERO);
    }

    /// Send a message delivered after `delay`.
    pub fn send_delayed(&mut self, to: ProcessId, payload: Payload, delay: SimDuration) {
        self.queue.push(
            self.now + delay,
            EventKind::Message {
                from: self.me,
                to,
                payload,
            },
        );
    }

    /// Arm a timer that fires on this process after `delay` with the given tag.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = self.queue.push(
            self.now + delay,
            EventKind::Timer {
                to: self.me,
                timer: TimerId(0), // patched below
                tag,
            },
        );
        // The timer id mirrors the event id so cancellation is a plain queue
        // cancellation.
        let timer = TimerId(id.0);
        // Re-push with the correct timer id: cancel the placeholder and push a
        // fresh event. Cheaper: we instead rebuild the event here.
        self.queue.cancel(id);
        let id2 = self.queue.push(
            self.now + delay,
            EventKind::Timer {
                to: self.me,
                timer,
                tag,
            },
        );
        // Keep the externally visible id consistent with the queued event so
        // `cancel_timer` works.
        TimerId(id2.0)
    }

    /// Cancel a previously armed timer. Cancelling an already-fired timer is a
    /// harmless no-op.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.queue.cancel(EventId(timer.0));
    }

    /// Stop the simulation after the current handler returns.
    pub fn halt(&mut self) {
        *self.halt = true;
    }

    /// Append a free-form trace record attributed to this process.
    pub fn trace(&mut self, message: impl Into<String>) {
        let now = self.now;
        self.tracer.log(now, self.name, message);
    }

    /// Statistics sink.
    pub fn stats(&mut self) -> &mut Tracer {
        self.tracer
    }
}

/// Deterministic discrete-event simulator.
pub struct Simulator {
    now: SimTime,
    queue: EventQueue,
    processes: Vec<Option<Box<dyn Process>>>,
    names: Vec<String>,
    rngs: Vec<ChaCha8Rng>,
    rng_factory: RngFactory,
    tracer: Tracer,
    halted: bool,
    events_processed: u64,
}

impl Simulator {
    /// Create a simulator with the given master seed (tracing log disabled).
    pub fn new(seed: u64) -> Self {
        Self::with_tracing(seed, false)
    }

    /// Create a simulator, optionally retaining the free-form trace log.
    pub fn with_tracing(seed: u64, log_enabled: bool) -> Self {
        Self {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processes: Vec::new(),
            names: Vec::new(),
            rngs: Vec::new(),
            rng_factory: RngFactory::new(seed),
            tracer: Tracer::new(log_enabled),
            halted: false,
            events_processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Register a process and schedule its start event at time zero.
    pub fn add_process(&mut self, process: Box<dyn Process>) -> ProcessId {
        self.add_process_at(process, SimTime::ZERO)
    }

    /// Register a process and schedule its start event at `start`.
    pub fn add_process_at(&mut self, process: Box<dyn Process>, start: SimTime) -> ProcessId {
        let id = ProcessId(self.processes.len());
        self.names.push(process.name());
        self.rngs.push(self.rng_factory.stream(id.0 as u64));
        self.processes.push(Some(process));
        self.queue.push(start, EventKind::Start { to: id });
        id
    }

    /// Number of registered processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Inject a message from "outside" the simulation, delivered at `at`.
    pub fn inject(&mut self, to: ProcessId, payload: Payload, at: SimTime) {
        self.queue.push(
            at,
            EventKind::Message {
                from: to,
                to,
                payload,
            },
        );
    }

    /// Schedule a halt of the whole simulation at `at`.
    pub fn halt_at(&mut self, at: SimTime) {
        self.queue.push(at, EventKind::Halt);
    }

    /// Read-only access to collected statistics and traces.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to statistics (for pre-run initialisation).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Access a process after the run (e.g. to read results). Panics if the
    /// id is unknown.
    pub fn process(&self, id: ProcessId) -> &dyn Process {
        self.processes[id.0]
            .as_deref()
            .expect("process is currently executing")
    }

    fn dispatch(&mut self, ev: crate::event::ScheduledEvent) {
        self.now = ev.time;
        self.events_processed += 1;
        match ev.kind {
            EventKind::Halt => {
                self.halted = true;
            }
            EventKind::Start { to } => {
                self.with_process(to, |proc, ctx| proc.on_start(ctx));
            }
            EventKind::Message { from, to, payload } => {
                self.with_process(to, |proc, ctx| proc.on_message(ctx, from, payload));
            }
            EventKind::Timer { to, timer, tag } => {
                self.with_process(to, |proc, ctx| proc.on_timer(ctx, timer, tag));
            }
        }
    }

    fn with_process<F>(&mut self, id: ProcessId, f: F)
    where
        F: FnOnce(&mut Box<dyn Process>, &mut Context<'_>),
    {
        let idx = id.0;
        if idx >= self.processes.len() {
            return;
        }
        let mut proc = match self.processes[idx].take() {
            Some(p) => p,
            None => return,
        };
        {
            let mut ctx = Context {
                now: self.now,
                me: id,
                queue: &mut self.queue,
                rng: &mut self.rngs[idx],
                tracer: &mut self.tracer,
                halt: &mut self.halted,
                name: &self.names[idx],
            };
            f(&mut proc, &mut ctx);
        }
        self.processes[idx] = Some(proc);
    }

    /// Run until the queue drains or a halt is requested.
    pub fn run(&mut self) -> RunOutcome {
        self.run_with_limits(SimTime::MAX, u64::MAX)
    }

    /// Run until `deadline` (inclusive), the queue drains, or a halt occurs.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_with_limits(deadline, u64::MAX)
    }

    /// Run with both a virtual-time deadline and an event-count budget.
    pub fn run_with_limits(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        let mut dispatched: u64 = 0;
        loop {
            if self.halted {
                return RunOutcome::Halted;
            }
            if dispatched >= max_events {
                return RunOutcome::LimitReached;
            }
            match self.queue.peek_time() {
                None => return RunOutcome::QueueEmpty,
                Some(t) if t > deadline => return RunOutcome::LimitReached,
                Some(_) => {}
            }
            let ev = self.queue.pop().expect("peeked event disappeared");
            self.dispatch(ev);
            dispatched += 1;
        }
    }

    /// Dispatch at most one event. Returns false if nothing was pending or the
    /// simulation already halted.
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        match self.queue.pop() {
            Some(ev) => {
                self.dispatch(ev);
                true
            }
            None => false,
        }
    }

    /// Whether a halt has been requested/processed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        received: Vec<u64>,
        peer: Option<ProcessId>,
    }

    impl Process for Echo {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if let Some(peer) = self.peer {
                ctx.send_delayed(peer, Box::new(1u64), SimDuration::from_millis(5));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, payload: Payload) {
            let v = *payload.downcast::<u64>().expect("u64 payload");
            self.received.push(v);
            if v < 3 {
                ctx.send_delayed(from, Box::new(v + 1), SimDuration::from_millis(5));
            }
        }
        fn name(&self) -> String {
            "echo".into()
        }
    }

    #[test]
    fn ping_pong_advances_virtual_time() {
        let mut sim = Simulator::new(1);
        let a = sim.add_process(Box::new(Echo {
            received: vec![],
            peer: None,
        }));
        let _b = sim.add_process(Box::new(Echo {
            received: vec![],
            peer: Some(a),
        }));
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::QueueEmpty);
        // messages 1,2,3 bounce: delivered at 5,10,15 ms
        assert_eq!(sim.now(), SimTime::from_nanos(15_000_000));
        assert_eq!(sim.events_processed(), 2 + 3); // 2 starts + 3 messages
    }

    struct TimerProc {
        fired: Vec<u64>,
        cancel_second: bool,
    }

    impl Process for TimerProc {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), 10);
            let t2 = ctx.set_timer(SimDuration::from_millis(2), 20);
            if self.cancel_second {
                ctx.cancel_timer(t2);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: ProcessId, _payload: Payload) {}
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: TimerId, tag: u64) {
            self.fired.push(tag);
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        // Because the simulator owns the processes we observe behaviour through
        // counters written by a wrapper; simplest is to re-run twice and check
        // event counts.
        let mut sim = Simulator::new(7);
        sim.add_process(Box::new(TimerProc {
            fired: vec![],
            cancel_second: false,
        }));
        sim.run();
        assert_eq!(sim.events_processed(), 1 + 2); // start + 2 timers

        let mut sim2 = Simulator::new(7);
        sim2.add_process(Box::new(TimerProc {
            fired: vec![],
            cancel_second: true,
        }));
        sim2.run();
        assert_eq!(sim2.events_processed(), 1 + 1); // start + 1 timer
    }

    #[test]
    fn halt_stops_run() {
        let mut sim = Simulator::new(3);
        let a = sim.add_process(Box::new(Echo {
            received: vec![],
            peer: None,
        }));
        // Self-message loop far in the future, but halt earlier.
        sim.inject(a, Box::new(0u64), SimTime::from_secs_f64(10.0));
        sim.halt_at(SimTime::from_secs_f64(1.0));
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::Halted);
        assert_eq!(sim.now(), SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulator::new(3);
        let a = sim.add_process(Box::new(Echo {
            received: vec![],
            peer: None,
        }));
        sim.inject(a, Box::new(10u64), SimTime::from_secs_f64(2.0));
        let outcome = sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(outcome, RunOutcome::LimitReached);
        assert!(sim.pending_events() > 0);
    }
}
