//! Tracing and statistics collection.
//!
//! The tracer records an append-only log of simulation events (optionally
//! disabled for large runs) and a set of named counters / gauges / time
//! series that experiments read back after the run.

use crate::time::SimTime;
use std::collections::BTreeMap;

/// One record in the trace log.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Virtual time at which the record was emitted.
    pub time: SimTime,
    /// Component that emitted the record (process name or subsystem).
    pub source: String,
    /// Free-form description.
    pub message: String,
}

/// Statistics and trace sink shared by all processes of a simulation.
#[derive(Debug, Default)]
pub struct Tracer {
    records: Vec<TraceRecord>,
    log_enabled: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<(SimTime, f64)>>,
}

impl Tracer {
    /// Create a tracer. `log_enabled` controls whether free-form records are
    /// retained (counters and series are always collected).
    pub fn new(log_enabled: bool) -> Self {
        Self {
            log_enabled,
            ..Default::default()
        }
    }

    /// Append a free-form record (no-op when logging is disabled).
    pub fn log(&mut self, time: SimTime, source: impl Into<String>, message: impl Into<String>) {
        if self.log_enabled {
            self.records.push(TraceRecord {
                time,
                source: source.into(),
                message: message.into(),
            });
        }
    }

    /// All retained records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Increment a named counter by `by`.
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Read a counter (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a named gauge to a value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Read a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Append a point to a named time series.
    pub fn sample(&mut self, name: &str, time: SimTime, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((time, value));
    }

    /// Read a time series.
    pub fn series(&self, name: &str) -> &[(SimTime, f64)] {
        self.series.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Names of all counters, in sorted order.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(|s| s.as_str())
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = Tracer::new(false);
        t.add("msgs", 2);
        t.add("msgs", 3);
        assert_eq!(t.counter("msgs"), 5);
        assert_eq!(t.counter("absent"), 0);
    }

    #[test]
    fn log_respects_enable_flag() {
        let mut off = Tracer::new(false);
        off.log(SimTime::ZERO, "a", "hello");
        assert!(off.records().is_empty());

        let mut on = Tracer::new(true);
        on.log(SimTime::ZERO, "a", "hello");
        assert_eq!(on.records().len(), 1);
        assert_eq!(on.records()[0].message, "hello");
    }

    #[test]
    fn gauges_and_series() {
        let mut t = Tracer::new(false);
        t.set_gauge("cwnd", 10.0);
        assert_eq!(t.gauge("cwnd"), Some(10.0));
        t.sample("residual", SimTime::from_nanos(1), 0.5);
        t.sample("residual", SimTime::from_nanos(2), 0.25);
        assert_eq!(t.series("residual").len(), 2);
        assert_eq!(t.series("nothing").len(), 0);
    }
}
