//! `desim` — a small, deterministic discrete-event simulation engine.
//!
//! This crate is the bottom-most substrate of the P2PDC reproduction. The
//! paper evaluated its system on the NICTA testbed (38 physical machines with
//! netem-injected WAN latency); this repository replaces that hardware with a
//! virtual-time simulation so that the full evaluation sweep is deterministic
//! and laptop-friendly while the numerical application still executes its
//! real floating-point kernel.
//!
//! Main concepts:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time.
//! * [`Process`] — an actor with `on_start`, `on_message`, `on_timer`.
//! * [`Simulator`] — the event loop: owns the clock, processes, RNG streams
//!   and the [`Tracer`].
//! * [`Context`] — handle given to process callbacks for sending messages,
//!   arming timers and recording statistics.
//!
//! # Example
//!
//! ```
//! use desim::{Context, Payload, Process, ProcessId, SimDuration, Simulator};
//!
//! struct Counter { count: u64 }
//! impl Process for Counter {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         let me = ctx.me();
//!         ctx.send_delayed(me, Box::new(()), SimDuration::from_millis(1));
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_>, _from: ProcessId, _p: Payload) {
//!         self.count += 1;
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! sim.add_process(Box::new(Counter { count: 0 }));
//! sim.run();
//! assert_eq!(sim.now().as_nanos(), 1_000_000);
//! ```

#![warn(missing_docs)]

mod event;
mod process;
mod rng;
mod scheduler;
mod time;
mod trace;

pub use event::{EventId, EventKind, Payload, TimerId};
pub use process::{Process, ProcessId};
pub use rng::{uniform01, RngFactory};
pub use scheduler::{Context, RunOutcome, Simulator};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceRecord, Tracer};
