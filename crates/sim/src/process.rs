//! Simulated processes (actors).
//!
//! A process reacts to three kinds of stimuli: a start signal, messages from
//! other processes, and its own timers. Handlers receive a [`Context`] through
//! which they can read the clock, send messages, set timers and record
//! statistics.

use crate::event::{Payload, TimerId};
use crate::scheduler::Context;

/// Index of a process registered with the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Behaviour of a simulated process.
///
/// All callbacks run to completion instantly in virtual time; time only
/// advances through explicitly scheduled events (messages and timers).
pub trait Process: Send {
    /// Called once when the process' start event fires.
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called when a message addressed to this process is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, payload: Payload);

    /// Called when one of the process' timers fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: TimerId, _tag: u64) {}

    /// Human-readable name used in traces.
    fn name(&self) -> String {
        "process".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl Process for Dummy {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: ProcessId, _payload: Payload) {}
    }

    #[test]
    fn default_name_and_id_display() {
        assert_eq!(Dummy.name(), "process");
        assert_eq!(ProcessId(3).to_string(), "P3");
        assert_eq!(ProcessId(3).index(), 3);
    }
}
