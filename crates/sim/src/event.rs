//! Event queue of the simulator.
//!
//! Events are ordered by (time, sequence number). The sequence number is a
//! monotonically increasing tie-breaker that guarantees FIFO order among
//! events scheduled for the same instant, which makes the simulation fully
//! deterministic.

use crate::process::ProcessId;
use crate::time::SimTime;
use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

/// Identifier of a timer set by a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

/// Payload delivered to a process. Network substrates and applications define
/// their own concrete message types and downcast on receipt.
pub type Payload = Box<dyn Any + Send>;

/// What a scheduled event does when it fires.
pub enum EventKind {
    /// Deliver a message payload to a process.
    Message {
        /// Originating process (may be the process itself).
        from: ProcessId,
        /// Destination process.
        to: ProcessId,
        /// Opaque payload.
        payload: Payload,
    },
    /// Fire a timer on a process.
    Timer {
        /// Destination process.
        to: ProcessId,
        /// Timer identity returned by `set_timer`.
        timer: TimerId,
        /// Caller-chosen tag to distinguish timer purposes.
        tag: u64,
    },
    /// Start a process (deliver its `on_start` callback).
    Start {
        /// Process to start.
        to: ProcessId,
    },
    /// Stop the whole simulation when this event is reached.
    Halt,
}

impl std::fmt::Debug for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::Message { from, to, .. } => {
                write!(f, "Message {{ from: {from:?}, to: {to:?} }}")
            }
            EventKind::Timer { to, timer, tag } => {
                write!(f, "Timer {{ to: {to:?}, timer: {timer:?}, tag: {tag} }}")
            }
            EventKind::Start { to } => write!(f, "Start {{ to: {to:?} }}"),
            EventKind::Halt => write!(f, "Halt"),
        }
    }
}

/// A scheduled event with its firing time and tie-breaking sequence number.
pub(crate) struct ScheduledEvent {
    pub time: SimTime,
    pub seq: u64,
    pub id: EventId,
    pub kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    /// Reversed so that the `BinaryHeap` (a max-heap) pops the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of pending events.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
    next_event_id: u64,
    cancelled: std::collections::HashSet<EventId>,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    /// True when no non-cancelled events remain.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule an event at an absolute time. Returns its id for cancellation.
    pub fn push(&mut self, time: SimTime, kind: EventKind) -> EventId {
        let id = EventId(self.next_event_id);
        self.next_event_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time,
            seq,
            id,
            kind,
        });
        id
    }

    /// Mark an event as cancelled; it will be skipped when popped.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Pop the next non-cancelled event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            return Some(ev);
        }
        None
    }

    /// Time of the next non-cancelled event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let cancelled = match self.heap.peek() {
                None => return None,
                Some(ev) => self.cancelled.contains(&ev.id),
            };
            if cancelled {
                let ev = self.heap.pop().expect("peeked event vanished");
                self.cancelled.remove(&ev.id);
            } else {
                return self.heap.peek().map(|ev| ev.time);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halt() -> EventKind {
        EventKind::Halt
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), halt());
        q.push(SimTime::from_nanos(10), halt());
        q.push(SimTime::from_nanos(20), halt());
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.time.as_nanos())).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        let a = q.push(t, halt());
        let b = q.push(t, halt());
        let c = q.push(t, halt());
        let order: Vec<EventId> = std::iter::from_fn(|| q.pop().map(|e| e.id)).collect();
        assert_eq!(order, vec![a, b, c]);
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_nanos(1), halt());
        let b = q.push(SimTime::from_nanos(2), halt());
        q.cancel(a);
        assert_eq!(q.len(), 1);
        let popped = q.pop().unwrap();
        assert_eq!(popped.id, b);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_nanos(1), halt());
        q.push(SimTime::from_nanos(7), halt());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
    }
}
