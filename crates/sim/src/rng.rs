//! Deterministic random number streams.
//!
//! Every component (process, link, ...) gets its own ChaCha8 stream derived
//! from the master seed and a stable stream index, so adding a component or
//! reordering draws in one component never perturbs another component's
//! stream. This is essential for reproducible experiments.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Factory for per-component deterministic RNG streams.
#[derive(Debug, Clone)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Create a factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        Self { master_seed }
    }

    /// The master seed this factory was built from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derive the stream for component `index`.
    pub fn stream(&self, index: u64) -> ChaCha8Rng {
        // SplitMix64-style mixing of (seed, index) into a 256-bit seed.
        let mut state = self
            .master_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            state = splitmix64(&mut state);
            chunk.copy_from_slice(&state.to_le_bytes());
        }
        ChaCha8Rng::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience: draw a uniform f64 in [0, 1) from any RngCore.
pub fn uniform01<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let f = RngFactory::new(42);
        let mut a = f.stream(7);
        let mut b = f.stream(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let f = RngFactory::new(42);
        let mut a = f.stream(1);
        let mut b = f.stream(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "independent streams should not coincide");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngFactory::new(1).stream(0);
        let mut b = RngFactory::new(2).stream(0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform01_in_range() {
        let mut rng = RngFactory::new(9).stream(0);
        for _ in 0..1000 {
            let x = uniform01(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
