//! Carrier crate for the workspace-level examples and integration tests; see `examples/` and `tests/`.
