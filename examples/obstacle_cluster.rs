//! One-cluster experiment: compare the three schemes of computation on the
//! simulated NICTA-style cluster (100 Mbit/s Ethernet), reproducing the
//! single-cluster series of the paper's Figure 5 for one grid size.
//!
//! ```text
//! cargo run --release --example obstacle_cluster [n] [peers]
//! ```

use p2pdc::{
    derive_row, format_table, run_obstacle_experiment, ComputeModel, ObstacleExperiment, Scheme,
};

/// Build an experiment whose per-sweep virtual cost matches the paper's 96³
/// runs, so the computation/communication granularity is representative even
/// at a reduced grid size (same scaling the benchmark harness uses).
fn experiment(n: usize, scheme: Scheme, peers: usize, clusters: usize) -> ObstacleExperiment {
    let mut exp = ObstacleExperiment::new(n, scheme, peers, clusters);
    exp.compute = ComputeModel::calibrated(50.0 * (96.0_f64 / n as f64).powi(3));
    exp
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);
    let peers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    println!("obstacle problem {n}^3, single cluster, {peers} peers\n");

    // Single-peer reference for speedups.
    let reference = run_obstacle_experiment(&experiment(n, Scheme::Synchronous, 1, 1));
    let mut rows = vec![derive_row(
        "synchronous",
        "1 cluster",
        reference.measurement.elapsed,
        &reference.measurement,
    )];
    for scheme in [Scheme::Synchronous, Scheme::Asynchronous, Scheme::Hybrid] {
        let exp = experiment(n, scheme, peers, 1);
        let result = run_obstacle_experiment(&exp);
        rows.push(derive_row(
            &scheme.to_string(),
            "1 cluster",
            reference.measurement.elapsed,
            &result.measurement,
        ));
        println!(
            "{scheme}: residual {:.2e}, intra-cluster packets {}",
            result.measurement.residual, result.net.intra.packets_delivered
        );
    }
    println!();
    println!(
        "{}",
        format_table("Single-cluster scheme comparison", &rows)
    );
}
