//! PageRank: run the asynchronous graph workload on the loopback runtime
//! through the workload-generic experiment driver.
//!
//! Unlike the PDE workloads, peers here exchange rank mass with *arbitrary*
//! neighbour peers (ring chords couple partitions a third of the ring
//! apart), and the asynchronous scheme of computation lets every peer
//! free-run on the freshest received mass — the totally asynchronous
//! iterations the paper's schemes target.
//!
//! ```text
//! cargo run --release --example pagerank
//! ```

use p2pdc::{run_on, RunConfig, RuntimeKind, Scheme, WorkloadKind};

fn main() {
    let vertices = 240;
    let peers = 6;
    println!("P2PDC pagerank: {vertices}-vertex ring+chords on {peers} peers (loopback runtime)");

    let workload = WorkloadKind::PageRank.build(vertices, peers);
    for scheme in [Scheme::Synchronous, Scheme::Asynchronous] {
        let mut config = RunConfig::quick(scheme, peers);
        config.tolerance = 1e-8;
        let result = run_on(workload.as_ref(), &config, RuntimeKind::Loopback);
        let sum: f64 = result.solution.iter().sum();
        println!(
            "{scheme:<13} converged: {} relaxations/peer: {:?} residual {:.3e} rank sum {:.6}",
            result.measurement.converged,
            result.measurement.relaxations_per_peer,
            result.measurement.residual,
            sum
        );
    }
}
