//! Obstacle problem over real localhost UDP sockets: the three schemes of
//! computation on the UDP runtime backend, with an optional loss/reorder
//! shim so the protocol's reliability machinery visibly earns its keep.
//!
//! ```text
//! cargo run --release --example udp_cluster [n] [peers] [loss]
//! ```
//!
//! Every peer is an OS thread owning a `UdpSocket` bound to an ephemeral
//! 127.0.0.1 port; peers discover each other through a bootstrap exchange
//! over the sockets themselves, and P2PSAP segments travel as framed UDP
//! datagrams through the kernel's loopback path.

use p2pdc::{
    run_on, BackendExtras, ObstacleInstance, ObstacleParams, ObstacleWorkload, RunConfig,
    RuntimeKind, Scheme,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let peers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let loss: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.0);
    println!(
        "obstacle problem {n}^3, {peers} peers over localhost UDP (loss {:.0}%)\n",
        loss * 100.0
    );

    for scheme in [Scheme::Synchronous, Scheme::Asynchronous, Scheme::Hybrid] {
        let workload = ObstacleWorkload::new(ObstacleParams {
            n,
            peers,
            scheme,
            instance: ObstacleInstance::Membrane,
        });
        let config = RunConfig::quick(scheme, peers).with_extras(BackendExtras::Udp {
            loss_probability: loss,
            reorder_probability: loss,
        });
        let result = run_on(&workload, &config, RuntimeKind::Udp);
        println!(
            "{scheme:<13} converged={} wall={:.3}s relaxations={:?} dropped={} residual={:.2e}",
            result.measurement.converged,
            result.measurement.elapsed.as_secs_f64(),
            result.measurement.relaxations_per_peer,
            result.datagrams_dropped,
            result.measurement.residual,
        );
    }
}
