//! Obstacle problem over real localhost UDP sockets: the three schemes of
//! computation on the fourth runtime backend, with an optional loss/reorder
//! shim so the protocol's reliability machinery visibly earns its keep.
//!
//! ```text
//! cargo run --release --example udp_cluster [n] [peers] [loss]
//! ```
//!
//! Every peer is an OS thread owning a `UdpSocket` bound to an ephemeral
//! 127.0.0.1 port; peers discover each other through a bootstrap exchange
//! over the sockets themselves, and P2PSAP segments travel as framed UDP
//! datagrams through the kernel's loopback path.

use p2pdc::{run_iterative_udp, ObstacleTask, Scheme, UdpRunConfig};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let peers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let loss: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.0);
    println!(
        "obstacle problem {n}^3, {peers} peers over localhost UDP (loss {:.0}%)\n",
        loss * 100.0
    );

    let problem = Arc::new(obstacle::ObstacleProblem::membrane(n));
    for scheme in [Scheme::Synchronous, Scheme::Asynchronous, Scheme::Hybrid] {
        let config = UdpRunConfig::quick(scheme, peers).with_impairment(loss, loss);
        let problem_for_tasks = Arc::clone(&problem);
        let outcome = run_iterative_udp(&config, move |rank| {
            Box::new(ObstacleTask::new(
                Arc::clone(&problem_for_tasks),
                peers,
                rank,
            ))
        });
        let solution = p2pdc::assemble_solution(n, &outcome.results);
        let residual = obstacle::fixed_point_residual(&problem, &solution, problem.optimal_delta());
        println!(
            "{scheme:<13} converged={} wall={:.3}s relaxations={:?} dropped={} residual={:.2e}",
            outcome.measurement.converged,
            outcome.measurement.elapsed.as_secs_f64(),
            outcome.measurement.relaxations_per_peer,
            outcome.datagrams_dropped,
            residual,
        );
        println!(
            "              peers bootstrapped on ports {:?}",
            outcome.ports
        );
    }
}
