//! Quickstart: solve a small 3-D obstacle problem with P2PDC on the thread
//! runtime (real OS threads, one per peer) and compare the distributed
//! solution with the sequential baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use obstacle::{solve_sequential, sup_norm_diff, RichardsonConfig};
use p2pdc::{
    run_on, ObstacleInstance, ObstacleParams, ObstacleWorkload, RunConfig, RuntimeKind, Scheme,
};

fn main() {
    let n = 16;
    let peers = 4;
    println!("P2PDC quickstart: {n}^3 obstacle problem on {peers} peers (thread runtime)");

    // The application side of the programming model: the workload supplies
    // the per-peer Calculate() (an ObstacleTask); the environment drives the
    // relaxation loop and the P2P_Send / P2P_Receive exchanges on whichever
    // registered backend is asked for.
    // The synchronous scheme reproduces the sequential iterates exactly, so
    // the comparison below is tight; try `Scheme::Asynchronous` to see peers
    // racing ahead at their own pace instead.
    let scheme = Scheme::Synchronous;
    let workload = ObstacleWorkload::new(ObstacleParams {
        n,
        peers,
        scheme,
        instance: ObstacleInstance::Membrane,
    });
    let problem = workload.problem();
    let config = RunConfig::quick(scheme, peers);
    let result = run_on(&workload, &config, RuntimeKind::Threads);

    println!(
        "converged: {} in {:.3} s wall-clock, relaxations per peer: {:?}",
        result.measurement.converged,
        result.measurement.elapsed.as_secs_f64(),
        result.measurement.relaxations_per_peer
    );

    // Compare with the single-machine baseline.
    let reference = solve_sequential(
        &problem,
        RichardsonConfig {
            tolerance: 1e-4,
            ..Default::default()
        },
    );
    let difference = sup_norm_diff(&result.solution, &reference.u);
    println!(
        "sequential baseline: {} relaxations; max difference distributed vs sequential: {difference:.2e}",
        reference.iterations
    );
    assert!(difference < 1e-2, "distributed solution is off");
    println!("OK");
}
