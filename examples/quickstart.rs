//! Quickstart: solve a small 3-D obstacle problem with P2PDC on the thread
//! runtime (real OS threads, one per peer) and compare the distributed
//! solution with the sequential baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use obstacle::{solve_sequential, sup_norm_diff, ObstacleProblem, RichardsonConfig};
use p2pdc::{assemble_solution, run_iterative_threads, ObstacleTask, Scheme, ThreadRunConfig};
use std::sync::Arc;

fn main() {
    let n = 16;
    let peers = 4;
    println!("P2PDC quickstart: {n}^3 obstacle problem on {peers} peers (thread runtime)");

    // The application side of the programming model: the per-peer Calculate()
    // is an ObstacleTask; the environment drives the relaxation loop and the
    // P2P_Send / P2P_Receive exchanges.
    // The synchronous scheme reproduces the sequential iterates exactly, so
    // the comparison below is tight; try `Scheme::Asynchronous` to see peers
    // racing ahead at their own pace instead.
    let problem = Arc::new(ObstacleProblem::membrane(n));
    let config = ThreadRunConfig::quick(Scheme::Synchronous, peers);
    let problem_for_tasks = Arc::clone(&problem);
    let outcome = run_iterative_threads(&config, move |rank| {
        Box::new(ObstacleTask::new(
            Arc::clone(&problem_for_tasks),
            peers,
            rank,
        ))
    });

    println!(
        "converged: {} in {:.3} s wall-clock, relaxations per peer: {:?}",
        outcome.measurement.converged,
        outcome.measurement.elapsed.as_secs_f64(),
        outcome.measurement.relaxations_per_peer
    );

    // Compare with the single-machine baseline.
    let reference = solve_sequential(
        &problem,
        RichardsonConfig {
            tolerance: 1e-4,
            ..Default::default()
        },
    );
    let distributed = assemble_solution(n, &outcome.results);
    let difference = sup_norm_diff(&distributed, &reference.u);
    println!(
        "sequential baseline: {} relaxations; max difference distributed vs sequential: {difference:.2e}",
        reference.iterations
    );
    assert!(difference < 1e-2, "distributed solution is off");
    println!("OK");
}
