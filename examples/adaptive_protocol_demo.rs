//! Demonstration of P2PSAP's self-adaptation: the programmer only selects a
//! scheme of computation; the protocol derives the data-channel configuration
//! from Table I and reconfigures at run time when the topology context
//! changes — without any change to the application's send calls.
//!
//! ```text
//! cargo run --example adaptive_protocol_demo
//! ```

use bytes::Bytes;
use netsim::ConnectionType;
use p2psap::{Scheme, Socket, SocketOption};

fn show(socket: &Socket, label: &str) {
    println!(
        "{label:<45} -> {}  (scheme: {}, connection: {:?})",
        socket.config().summary(),
        socket.scheme(),
        socket.connection()
    );
}

fn main() {
    println!("P2PSAP adaptation rules (Table I)\n");
    for scheme in [Scheme::Synchronous, Scheme::Asynchronous, Scheme::Hybrid] {
        for connection in [ConnectionType::IntraCluster, ConnectionType::InterCluster] {
            let socket = Socket::open(scheme, connection);
            show(&socket, &format!("{scheme} x {connection:?}"));
        }
    }

    println!("\nRuntime reconfiguration: the same P2P_Send becomes asynchronous after a topology change\n");
    let mut a = Socket::open(Scheme::Hybrid, ConnectionType::IntraCluster);
    let mut b = Socket::open(Scheme::Hybrid, ConnectionType::IntraCluster);
    show(&a, "peer A before the change");

    // First send: synchronous (intra-cluster hybrid).
    let (_, out1) = a.send(Bytes::from_static(b"iterate update #1"), 1_000);
    println!(
        "send #1: {} data segment(s), completed immediately: {}",
        out1.data.len(),
        !out1.completions.is_empty()
    );
    for seg in &out1.data {
        let _ = b.on_data(seg.clone(), 2_000);
    }

    // The topology manager reports that peer B now sits in another cluster.
    let proposal = a.set_option(SocketOption::Connection(ConnectionType::InterCluster));
    println!(
        "topology change -> {} reconfiguration proposal(s) sent over the control channel",
        proposal.control.len()
    );
    let mut replies = Vec::new();
    for ctrl in &proposal.control {
        let out = b.on_control(*ctrl);
        replies.extend(out.control);
    }
    for reply in replies {
        let _ = a.on_control(reply);
    }
    show(&a, "peer A after coordination");
    show(&b, "peer B after coordination");

    // Second send through the *same* API call: now asynchronous + unreliable.
    let (_, out2) = a.send(Bytes::from_static(b"iterate update #2"), 3_000);
    println!(
        "send #2: {} data segment(s), completed immediately: {}",
        out2.data.len(),
        !out2.completions.is_empty()
    );
}
