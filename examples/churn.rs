//! Crash and recover a peer mid-run on the thread backend.
//!
//! One OS thread per peer solves the obstacle problem asynchronously; a
//! seeded churn plan kills one peer partway through. The dead peer stops
//! pinging the run's topology manager, is evicted after three missed ping
//! periods, and the recovery path restarts its block from the latest live
//! checkpoint — the run still converges to the fault-free residual quality.
//!
//! ```text
//! cargo run --release -p apps --example churn
//! ```

use p2pdc::{run_on, ChurnPlan, RunConfig, RuntimeKind, Scheme, WorkloadKind};

fn main() {
    let peers = 3;
    let size = 10;
    let workload = WorkloadKind::Obstacle.build(size, peers);

    // Fault-free baseline: how many relaxations does the solve take?
    let clean = RunConfig::quick(Scheme::Asynchronous, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Threads);
    let baseline_iters = baseline
        .measurement
        .relaxations_per_peer
        .iter()
        .min()
        .copied()
        .unwrap_or(0);
    println!(
        "fault-free: converged={} relaxations={:?} residual={:.3e}",
        baseline.measurement.converged,
        baseline.measurement.relaxations_per_peer,
        baseline.measurement.residual,
    );

    // Kill peer 1 early in the run. Thread-backend relaxation counts vary
    // with the scheduler, so the crash point is clamped well below any
    // plausible convergence iteration — the victim must actually reach it,
    // or no crash fires.
    let crash_at = (baseline_iters * 3 / 10).clamp(2, 200);
    let faulty = clean
        .clone()
        .with_churn(ChurnPlan::kill(1, crash_at).with_checkpoint_interval((crash_at / 2).max(1)));
    println!("\ninjecting: crash of rank 1 after {crash_at} relaxations ...");
    let result = run_on(workload.as_ref(), &faulty, RuntimeKind::Threads);
    println!(
        "with churn: converged={} crashes={} recoveries={} rollbacks={} downtime={:.1}ms",
        result.measurement.converged,
        result.measurement.crashes,
        result.measurement.recoveries,
        result.measurement.rollbacks,
        result.measurement.downtime_s * 1e3,
    );
    println!(
        "            relaxations={:?} residual={:.3e}",
        result.measurement.relaxations_per_peer, result.measurement.residual,
    );
    println!(
        "            per-peer throughput [points/s]: {:?}",
        result
            .measurement
            .points_per_sec
            .iter()
            .map(|t| *t as u64)
            .collect::<Vec<_>>(),
    );
    assert!(result.measurement.converged, "the faulty run must converge");
    assert_eq!(result.measurement.recoveries, 1);
    println!("\nthe asynchronous scheme absorbed the crash: same residual tolerance, one recovery");
}
