//! Heat cluster: solve the 2-D steady-state heat equation with P2PDC on the
//! thread runtime (real OS threads, one per peer) through the
//! workload-generic experiment driver, and compare the distributed
//! temperature field with the sequential Jacobi baseline.
//!
//! ```text
//! cargo run --release --example heat_cluster
//! ```

use p2pdc::{run_on, solve_heat_sequential, RunConfig, RuntimeKind, Scheme, WorkloadKind};

fn main() {
    let n = 24;
    let peers = 4;
    println!("P2PDC heat cluster: {n}x{n} plate on {peers} peers (thread runtime)");

    // The workload abstraction packages the application's three functions —
    // problem definition, per-peer Calculate(), results aggregation — so the
    // same run_on call works for any workload on any backend.
    let workload = WorkloadKind::Heat.build(n, peers);
    let config = RunConfig::quick(Scheme::Synchronous, peers);
    let result = run_on(workload.as_ref(), &config, RuntimeKind::Threads);

    println!(
        "converged: {} after {} relaxations/peer (max), wall {:.3} s",
        result.measurement.converged,
        result.measurement.max_relaxations(),
        result.measurement.elapsed.as_secs_f64()
    );
    println!("fixed-point residual: {:.3e}", result.measurement.residual);

    // Sequential baseline: the synchronous scheme reproduces its iterates.
    let (reference, iterations) = solve_heat_sequential(n, config.tolerance, 1_000_000);
    let max_err = result
        .solution
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("sequential Jacobi: {iterations} sweeps; max deviation {max_err:.3e}");

    // Temperature profile down the centre of the plate: 1.0 at the heated
    // edge, decaying towards the cold edges.
    let mid = n / 2;
    print!("centre-column temperatures: ");
    for i in (0..n).step_by(4) {
        print!("{:.3} ", result.solution[i * n + mid]);
    }
    println!();
}
