//! Options-pricing-like workload: the paper motivates the obstacle problem
//! with financial mathematics (American option pricing leads to an obstacle /
//! complementarity problem). This example solves the built-in
//! `Financial` instance on the full P2PDC environment: topology manager,
//! task manager, programming model and the simulated runtime.
//!
//! ```text
//! cargo run --release --example options_pricing [n] [peers]
//! ```

use desim::{SimDuration, SimTime};
use netsim::{ClusterId, NodeId};
use p2pdc::{
    parse_command, run_obstacle_experiment, Command, ObstacleApp, ObstacleExperiment,
    ObstacleInstance, ObstacleParams, Scheme, TaskManager, TopologyManager,
};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let peers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    // 1. Peers join the environment (centralized topology manager).
    let mut topology = TopologyManager::new(SimDuration::from_secs(1));
    for i in 0..peers + 2 {
        topology.register(NodeId(i), ClusterId(i % 2), 1.0, SimTime::ZERO);
    }
    println!(
        "{} peers registered, {} free",
        topology.peer_count(),
        topology.free_count()
    );

    // 2. The user submits the application through the user daemon.
    let mut task_manager = TaskManager::new();
    task_manager.register_application(Arc::new(ObstacleApp::new(ObstacleParams {
        n,
        peers,
        scheme: Scheme::Hybrid,
        instance: ObstacleInstance::Financial,
    })));
    let command = parse_command(&format!(r#"run obstacle {{"peers": {peers}}}"#)).expect("command");
    let Command::Run { app, params } = command else {
        unreachable!()
    };
    let job = task_manager.submit(&app, &params, &mut topology);
    println!(
        "job {job} submitted: {:?}, peers allocated: {:?}",
        task_manager.job(job).state,
        task_manager.job(job).peers
    );

    // 3. The sub-tasks execute on the simulated runtime (hybrid scheme over
    //    two clusters) — this is what the task-execution component drives.
    let exp = ObstacleExperiment {
        n,
        instance: ObstacleInstance::Financial,
        scheme: Scheme::Hybrid,
        peers,
        clusters: 2,
        tolerance: 1e-4,
        compute: p2pdc::ComputeModel::default(),
        seed: 7,
    };
    let result = run_obstacle_experiment(&exp);
    println!(
        "converged: {}, virtual time {:.3} s, relaxations per peer {:?}, residual {:.2e}",
        result.measurement.converged,
        result.measurement.elapsed.as_secs_f64(),
        result.measurement.relaxations_per_peer,
        result.measurement.residual
    );

    // 4. Results flow back through the task manager and are aggregated.
    for rank in 0..peers {
        task_manager.submit_result(job, rank, vec![0u8; 8]);
    }
    println!(
        "job state after collection: {:?}",
        task_manager.job(job).state
    );
    task_manager.release(job, &mut topology);
    println!("peers released, {} free again", topology.free_count());

    // The "price surface" (solution) respects the payoff obstacle everywhere.
    let problem = p2pdc::build_problem(&ObstacleParams {
        n,
        peers,
        scheme: Scheme::Hybrid,
        instance: ObstacleInstance::Financial,
    });
    let violations = result
        .solution
        .iter()
        .zip(problem.psi.iter())
        .filter(|(u, psi)| **u < **psi - 1e-9)
        .count();
    println!("obstacle (payoff) violations: {violations}");
}
