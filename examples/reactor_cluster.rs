//! 256 peers on one machine: the reactor backend multiplexes every peer's
//! nonblocking UDP socket onto a few event loops, so a peer population two
//! orders of magnitude beyond the thread backend's comfort zone still runs
//! as a handful of OS threads.
//!
//! The run solves the obstacle problem asynchronously and survives a seeded
//! mid-run crash: the victim is evicted through missed pings, its block is
//! restored from the latest live checkpoint, and a fresh peer joins the run
//! afterwards, triggering a live repartition of the planes.
//!
//! ```text
//! cargo run --release -p apps --example reactor_cluster [n] [peers]
//! ```
//!
//! The default 256-peer run moves half-megabyte ghost planes per exchange
//! and takes a couple of minutes on a small box; try `64 64` for a
//! seconds-long tour of the same machinery.

use p2pdc::{run_on, BackendExtras, ChurnPlan, RunConfig, RuntimeKind, Scheme, WorkloadKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_arg: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let peers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    // The obstacle decomposition hands each peer at least one grid plane,
    // and the joiner needs a plane of its own too.
    let n = n_arg.max(peers + 1);
    let workload = WorkloadKind::Obstacle.build(n, peers);
    println!("obstacle problem {n}^3, {peers} peers multiplexed on the reactor backend\n");

    // Crash the middle peer early, recover it from the live checkpoints,
    // then grow the run by one joining peer once the recovery has settled.
    // A ghost plane is n^2 values, so at n = 257 every exchange moves half
    // a megabyte; the tolerance is coarsened with the population to keep
    // the demo's total data volume in check, and the churn events sit at
    // the very start of the run so they fire at any tolerance.
    let tolerance = if peers > 64 { 1e-3 } else { 1e-4 };
    let crash_at = 3;
    let join_at = 8;
    let plan = ChurnPlan::kill(peers / 2, crash_at)
        .with_checkpoint_interval(2)
        .with_repartition(true)
        .with_join(0, join_at);
    let mut config = RunConfig::single_cluster(Scheme::Asynchronous, peers)
        .with_churn(plan)
        .with_extras(BackendExtras::Reactor {
            // 0 = one event loop per available core.
            event_loops: 0,
            loss_probability: 0.0,
            reorder_probability: 0.0,
        });
    config.tolerance = tolerance;

    let start = std::time::Instant::now();
    let result = run_on(workload.as_ref(), &config, RuntimeKind::Reactor);
    let wall = start.elapsed().as_secs_f64();

    let m = &result.measurement;
    println!(
        "converged={} wall={wall:.2}s crashes={} recoveries={} joins={} rollbacks={}",
        m.converged, m.crashes, m.recoveries, m.joins, m.rollbacks,
    );
    println!(
        "final population={} residual={:.3e} min/max relaxations={}/{}",
        m.relaxations_per_peer.len(),
        m.residual,
        m.relaxations_per_peer.iter().min().copied().unwrap_or(0),
        m.relaxations_per_peer.iter().max().copied().unwrap_or(0),
    );

    assert!(m.converged, "the churned 256-peer run must converge");
    assert_eq!(m.crashes, 1, "exactly one seeded crash");
    assert_eq!(m.recoveries, 1, "the victim must recover");
    assert!(m.joins >= 1, "the seeded join must fire");

    // The measured loop rebalance at work: per-loop busy-time shares over
    // the first rebalance period (the imbalance the first migration
    // decision saw) against the whole run, plus the migrations performed.
    if let Some(stats) = p2pdc::runtime::reactor::last_loop_stats() {
        let shares = |busy: &[u64]| -> String {
            let total: u64 = busy.iter().sum::<u64>().max(1);
            busy.iter()
                .map(|&ns| format!("{:.0}%", ns as f64 * 100.0 / total as f64))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "\nper-loop busy shares: first period [{}] -> whole run [{}] ({} migrations)",
            shares(&stats.busy_ns_first_period),
            shares(&stats.busy_ns_final),
            stats.migrations,
        );
    }
    println!("\n{peers} peers, one crash, one join - absorbed on a couple of event loops");
}
