//! Two-cluster experiment: the same peers split into two clusters joined by a
//! netem-emulated 100 ms Internet path (the paper's second topology). Shows
//! the collapse of the synchronous scheme and the robustness of the
//! asynchronous and hybrid schemes.
//!
//! ```text
//! cargo run --release --example two_cluster_wan [n] [peers]
//! ```

use p2pdc::{
    derive_row, format_table, run_obstacle_experiment, ComputeModel, ObstacleExperiment, Scheme,
};

/// Experiment with the granularity-preserving compute model (per-sweep cost of
/// the paper's 96³ runs), as used by the benchmark harness.
fn experiment(n: usize, scheme: Scheme, peers: usize, clusters: usize) -> ObstacleExperiment {
    let mut exp = ObstacleExperiment::new(n, scheme, peers, clusters);
    exp.compute = ComputeModel::calibrated(50.0 * (96.0_f64 / n as f64).powi(3));
    exp
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);
    let peers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    println!("obstacle problem {n}^3, two clusters (100 ms WAN), {peers} peers\n");

    let reference = run_obstacle_experiment(&experiment(n, Scheme::Synchronous, 1, 1));
    let mut rows = Vec::new();
    for scheme in [Scheme::Synchronous, Scheme::Asynchronous, Scheme::Hybrid] {
        for clusters in [1usize, 2] {
            let exp = experiment(n, scheme, peers, clusters);
            let result = run_obstacle_experiment(&exp);
            rows.push(derive_row(
                &scheme.to_string(),
                if clusters == 1 {
                    "1 cluster"
                } else {
                    "2 clusters"
                },
                reference.measurement.elapsed,
                &result.measurement,
            ));
        }
    }
    println!("{}", format_table("1 cluster vs 2 clusters", &rows));
    println!(
        "Note how the synchronous scheme loses most of its speedup when the 100 ms path splits the peers,\n\
         while the asynchronous scheme barely changes — the paper's central observation."
    );
}
