//! 256 peers with no central failure detector: the reactor backend runs the
//! decentralized control plane — SWIM gossip membership plus distributed
//! convergence detection — so the run has *zero* topology-manager ping
//! traffic. Peers probe seeded random targets, silence hardens into
//! suspicion and then a death verdict, and the verdict (a rumor, not a
//! monitor sweep) grants the crashed peer's recovery. The stop decision
//! emerges the same way: every peer folds the convergence digests
//! piggy-backed on gossip messages and the first digest that proves global
//! convergence terminates the run.
//!
//! ```text
//! cargo run --release -p apps --example gossip_cluster [n] [peers] [fanout]
//! ```
//!
//! Try `64 64` for a seconds-long run of the same machinery.

use p2pdc::{run_on, BackendExtras, ChurnPlan, RunConfig, RuntimeKind, Scheme, WorkloadKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_arg: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let peers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let fanout: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    // The obstacle decomposition hands each peer at least one grid plane.
    let n = n_arg.max(peers + 1);
    let workload = WorkloadKind::Obstacle.build(n, peers);
    println!(
        "obstacle problem {n}^3, {peers} peers on the reactor backend, \
         gossip control plane (fanout {fanout}, no ping server)\n"
    );

    // One seeded crash early in the run: eviction and recovery must come
    // entirely from gossip death verdicts — under the gossip control plane
    // the per-run topology-manager ping server is never started.
    let tolerance = if peers > 64 { 1e-3 } else { 1e-4 };
    let plan = ChurnPlan::kill(peers / 2, 3).with_checkpoint_interval(2);
    let mut config = RunConfig::single_cluster(Scheme::Asynchronous, peers)
        .with_gossip(fanout)
        .with_churn(plan)
        .with_extras(BackendExtras::Reactor {
            // 0 = one event loop per available core.
            event_loops: 0,
            loss_probability: 0.0,
            reorder_probability: 0.0,
        });
    config.tolerance = tolerance;

    p2pdc::gossip::stats::reset();
    p2pdc::runtime::report_cell::contention::reset();
    let start = std::time::Instant::now();
    let result = run_on(workload.as_ref(), &config, RuntimeKind::Reactor);
    let wall = start.elapsed().as_secs_f64();

    let m = &result.measurement;
    println!(
        "converged={} wall={wall:.2}s crashes={} recoveries={} rollbacks={}",
        m.converged, m.crashes, m.recoveries, m.rollbacks,
    );
    println!(
        "residual={:.3e} min/max relaxations={}/{}",
        m.residual,
        m.relaxations_per_peer.iter().min().copied().unwrap_or(0),
        m.relaxations_per_peer.iter().max().copied().unwrap_or(0),
    );

    let g = p2pdc::gossip::stats::snapshot();
    println!(
        "gossip traffic: probes={} indirect={} rumors sent/received={}/{} \
         digest merges={} death verdicts={}",
        g.probes_sent,
        g.indirect_probes,
        g.rumors_sent,
        g.rumors_received,
        g.row_merges,
        g.death_verdicts,
    );

    assert!(m.converged, "the gossip-only 256-peer run must converge");
    assert_eq!(m.crashes, 1, "exactly one seeded crash");
    assert_eq!(
        m.recoveries, 1,
        "the victim must recover through a gossip death verdict"
    );
    assert!(g.probes_sent > 0, "the SWIM probe cycle must have run");
    assert!(
        g.death_verdicts >= 1,
        "the crash must surface as a gossip death verdict"
    );
    // The ping server is never constructed under gossip, so its mutex is
    // untouched (the counter is live when the `contention-count` feature is
    // on, and trivially zero otherwise).
    let locks = p2pdc::runtime::report_cell::contention::snapshot();
    assert_eq!(
        locks.topology_locks, 0,
        "the gossip run must generate zero topology-manager ping traffic"
    );
    println!("\n{peers} peers, one crash — no central detector anywhere in the run");
}
