//! End-to-end tests of the workload-generic experiment layer: the heat and
//! PageRank workloads running on multiple runtime backends through the one
//! generic `run_on` path, checked for cross-runtime agreement the same way
//! `tests/udp_e2e.rs` checks the obstacle workload.

use p2pdc::{
    pagerank_reference, run_on, solve_heat_sequential, HeatApp, HeatParams, ObstacleApp,
    ObstacleInstance, ObstacleParams, PageRankApp, PageRankParams, RunConfig, RunMeasurement,
    RuntimeKind, Scheme, WorkloadKind,
};
use std::sync::Arc;

/// The convergence iteration of a run: synchronous-scheme relaxation counts
/// are problem-determined, and the peer that detects convergence stops at
/// exactly that iteration, so the per-run minimum is the runtime-independent
/// invariant (wall-clock peers may overshoot by the topology diameter).
fn min_relaxations(m: &RunMeasurement) -> u64 {
    m.relaxations_per_peer.iter().copied().min().unwrap_or(0)
}

/// Fixed-seed cross-runtime agreement for the heat workload: loopback and
/// sim must agree on the synchronous convergence iteration, which must also
/// equal the sequential Jacobi sweep count.
#[test]
fn heat_loopback_and_sim_agree_on_synchronous_relaxation_counts() {
    let n = 16;
    let peers = 4;
    let workload = WorkloadKind::Heat.build(n, peers);
    let config = RunConfig::single_cluster(Scheme::Synchronous, peers);
    let loopback = run_on(workload.as_ref(), &config, RuntimeKind::Loopback);
    let sim = run_on(workload.as_ref(), &config, RuntimeKind::Sim);
    assert!(loopback.measurement.converged && sim.measurement.converged);
    assert_eq!(
        min_relaxations(&loopback.measurement),
        min_relaxations(&sim.measurement),
        "the convergence iteration differs: loopback {:?} vs sim {:?}",
        loopback.measurement.relaxations_per_peer,
        sim.measurement.relaxations_per_peer
    );
    let (_, sequential_sweeps) = solve_heat_sequential(n, config.tolerance, 1_000_000);
    assert_eq!(min_relaxations(&sim.measurement), sequential_sweeps);
    assert!(loopback.measurement.residual < config.tolerance * 2.0);
    assert!(sim.measurement.residual < config.tolerance * 2.0);
}

/// Fixed-seed cross-runtime agreement for the PageRank workload, whose
/// non-grid communication pattern (ring chords between vertex partitions)
/// exercises the engine beyond nearest-neighbour topologies.
#[test]
fn pagerank_loopback_and_sim_agree_on_synchronous_relaxation_counts() {
    let vertices = 120;
    let peers = 4;
    let workload = WorkloadKind::PageRank.build(vertices, peers);
    let mut config = RunConfig::single_cluster(Scheme::Synchronous, peers);
    config.tolerance = 1e-8;
    let loopback = run_on(workload.as_ref(), &config, RuntimeKind::Loopback);
    let sim = run_on(workload.as_ref(), &config, RuntimeKind::Sim);
    assert!(loopback.measurement.converged && sim.measurement.converged);
    assert_eq!(
        min_relaxations(&loopback.measurement),
        min_relaxations(&sim.measurement),
        "the convergence iteration differs: loopback {:?} vs sim {:?}",
        loopback.measurement.relaxations_per_peer,
        sim.measurement.relaxations_per_peer
    );
    // The sum of the assembled ranks is (close to) a probability
    // distribution, and the residual under one more power step is tiny.
    let sum: f64 = loopback.solution.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "rank sum {sum}");
    assert!(loopback.measurement.residual < 1e-7);
}

/// The reactor backend multiplexes all peers onto a few event loops over
/// real nonblocking UDP sockets, yet must land on the same
/// problem-determined synchronous convergence iteration as the in-process
/// loopback backend — for all three workloads.
#[test]
fn reactor_agrees_with_loopback_on_synchronous_relaxation_counts() {
    for (kind, size, tolerance) in [
        (WorkloadKind::Obstacle, 10, 1e-4),
        (WorkloadKind::Heat, 16, 1e-4),
        (WorkloadKind::PageRank, 120, 1e-8),
    ] {
        let peers = 4;
        let workload = kind.build(size, peers);
        let mut config = RunConfig::single_cluster(Scheme::Synchronous, peers);
        config.tolerance = tolerance;
        let loopback = run_on(workload.as_ref(), &config, RuntimeKind::Loopback);
        let reactor = run_on(workload.as_ref(), &config, RuntimeKind::Reactor);
        assert!(
            loopback.measurement.converged && reactor.measurement.converged,
            "{kind} did not converge on both backends"
        );
        assert_eq!(
            min_relaxations(&loopback.measurement),
            min_relaxations(&reactor.measurement),
            "{kind}: the convergence iteration differs: loopback {:?} vs reactor {:?}",
            loopback.measurement.relaxations_per_peer,
            reactor.measurement.relaxations_per_peer
        );
        // Wall-clock peers may overshoot the convergence iteration, but only
        // by up to the topology diameter before the stop broadcast lands.
        assert!(
            reactor.measurement.max_relaxations()
                < min_relaxations(&reactor.measurement) + peers as u64,
            "{kind}: reactor overshoot beyond the topology diameter: {:?}",
            reactor.measurement.relaxations_per_peer
        );
        assert!(
            reactor.measurement.residual < tolerance * 2.0,
            "{kind}: reactor residual {}",
            reactor.measurement.residual
        );
    }
}

/// Same-seed loopback runs of the new workloads are bit-for-bit
/// reproducible, like the obstacle runs in `tests/determinism.rs`.
#[test]
fn new_workloads_are_deterministic_on_loopback() {
    for (kind, size, tolerance) in [
        (WorkloadKind::Heat, 12, 1e-4),
        (WorkloadKind::PageRank, 60, 1e-8),
    ] {
        let workload = kind.build(size, 3);
        let mut config = RunConfig::single_cluster(Scheme::Asynchronous, 3);
        config.tolerance = tolerance;
        let a = run_on(workload.as_ref(), &config, RuntimeKind::Loopback);
        let b = run_on(workload.as_ref(), &config, RuntimeKind::Loopback);
        assert_eq!(
            a.measurement.relaxations_per_peer, b.measurement.relaxations_per_peer,
            "{kind}: loopback runs must be deterministic"
        );
        assert_eq!(a.solution, b.solution);
    }
}

/// The asynchronous scheme converges for both new workloads and stays close
/// to the synchronous fixed point (freshest-update iteration, same limit).
#[test]
fn asynchronous_runs_of_new_workloads_converge() {
    for (kind, size, tolerance, residual_cap) in [
        (WorkloadKind::Heat, 14, 1e-4, 1e-2),
        (WorkloadKind::PageRank, 90, 1e-8, 1e-6),
    ] {
        let workload = kind.build(size, 3);
        let mut config = RunConfig::single_cluster(Scheme::Asynchronous, 3);
        config.tolerance = tolerance;
        let result = run_on(workload.as_ref(), &config, RuntimeKind::Loopback);
        assert!(result.measurement.converged, "{kind} did not converge");
        assert!(
            result.measurement.residual < residual_cap,
            "{kind}: residual {}",
            result.measurement.residual
        );
    }
}

/// All three applications register in the task-manager registry and drive a
/// job through `Problem_Definition()` → `Calculate()` →
/// `Results_Aggregation()`.
#[test]
fn all_three_applications_register_and_aggregate() {
    let mut tm = p2pdc::TaskManager::new();
    tm.register_application(Arc::new(ObstacleApp::new(ObstacleParams {
        n: 6,
        peers: 2,
        scheme: Scheme::Synchronous,
        instance: ObstacleInstance::Membrane,
    })));
    tm.register_application(Arc::new(HeatApp::new(HeatParams {
        n: 8,
        peers: 2,
        scheme: Scheme::Synchronous,
    })));
    tm.register_application(Arc::new(PageRankApp::new(PageRankParams {
        vertices: 24,
        peers: 2,
        scheme: Scheme::Asynchronous,
    })));
    assert_eq!(
        tm.application_names(),
        vec![
            "heat".to_string(),
            "obstacle".to_string(),
            "pagerank".to_string()
        ]
    );
    // Drive each application's sub-tasks by hand for a couple of sweeps and
    // aggregate: the registry path works for every workload, not just the
    // obstacle problem.
    for name in ["heat", "pagerank"] {
        let app = tm.application(name).unwrap();
        let def = app.problem_definition(&serde_json::json!({}));
        let results: Vec<(usize, Vec<u8>)> = (0..def.peers_needed)
            .map(|rank| {
                let mut task = app.calculate(&def, rank);
                task.relax();
                (rank, task.result())
            })
            .collect();
        let output = app.results_aggregation(&results);
        let expected = match name {
            "heat" => 8usize * 8 * 8,
            _ => 24 * 8,
        };
        assert_eq!(output.len(), expected, "{name}: aggregated solution bytes");
    }
}

/// The PageRank distributed fixed point matches the sequential reference
/// ranks (through the generic path, not just the hand-driven task test).
#[test]
fn pagerank_distributed_fixed_point_matches_reference() {
    let vertices = 60;
    let peers = 3;
    let workload = WorkloadKind::PageRank.build(vertices, peers);
    let mut config = RunConfig::single_cluster(Scheme::Synchronous, peers);
    config.tolerance = 1e-10;
    let result = run_on(workload.as_ref(), &config, RuntimeKind::Loopback);
    assert!(result.measurement.converged);
    let graph = p2pdc::PageRankGraph::ring_with_chords(vertices);
    let (reference, _) = pagerank_reference(&graph, 1e-10, 100_000);
    let err = result
        .solution
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(err < 1e-8, "distributed ranks deviate by {err}");
}
