//! Integration test of the extension components: failure detection through
//! the topology manager, recovery planning through the fault manager, and
//! capacity-aware re-balancing through the load balancer.

use desim::{SimDuration, SimTime};
use netsim::{ClusterId, NodeId};
use obstacle::BlockDecomposition;
use p2pdc::IterativeTask;
use p2pdc::{
    Checkpoint, FaultManager, LoadBalancer, ObstacleInstance, ObstacleParams, ObstacleTask,
    RecoveryAction, Scheme, TopologyManager,
};
use std::sync::Arc;

#[test]
fn failure_is_detected_and_the_subtask_reassigned_from_a_checkpoint() {
    // Four workers plus one spare registered with the topology manager.
    let mut topology = TopologyManager::new(SimDuration::from_secs(1));
    for i in 0..5 {
        topology.register(NodeId(i), ClusterId(0), 1.0, SimTime::ZERO);
    }
    let workers = topology.collect_peers(4).expect("enough peers");
    let spare = topology.collect_peers(1).expect("spare")[0];

    // The application runs and periodically checkpoints each rank.
    let params = ObstacleParams {
        n: 10,
        peers: 4,
        scheme: Scheme::Asynchronous,
        instance: ObstacleInstance::Membrane,
    };
    let problem = Arc::new(p2pdc::build_problem(&params));
    let mut fm = FaultManager::new(vec![spare]);
    let mut tasks: Vec<ObstacleTask> = (0..4)
        .map(|rank| ObstacleTask::new(Arc::clone(&problem), 4, rank))
        .collect();
    for task in tasks.iter_mut() {
        for _ in 0..20 {
            task.relax();
        }
    }
    for (rank, task) in tasks.iter().enumerate() {
        fm.store_checkpoint(Checkpoint {
            rank,
            iteration: task.relaxations(),
            state: task.result(),
        });
    }

    // Peer 2 stops pinging; everyone else (including the spare) keeps pinging.
    for tick in 1..=4u64 {
        let now = SimTime::from_secs_f64(tick as f64);
        for &peer in workers.iter().chain(std::iter::once(&spare)) {
            if peer != NodeId(2) {
                topology.ping(peer, now);
            }
        }
    }
    let evicted = topology.evict_stale(SimTime::from_secs_f64(4.0));
    assert_eq!(evicted, vec![NodeId(2)]);

    // The fault manager reassigns rank 2 to the spare, resuming from its
    // checkpoint.
    let action = fm.on_failure(2);
    match action {
        RecoveryAction::Reassign {
            rank,
            replacement,
            from_iteration,
        } => {
            assert_eq!(rank, 2);
            assert_eq!(replacement, spare);
            assert_eq!(from_iteration, 20);
            // The checkpointed state restores a task of the right size.
            let state = fm.checkpoint(2).unwrap();
            assert!(!state.state.is_empty());
        }
        other => panic!("expected a reassignment, got {other:?}"),
    }

    // A second failure with no spares left pauses the computation.
    assert_eq!(fm.on_failure(1), RecoveryAction::Pause { rank: 1 });
}

#[test]
fn load_balancer_shifts_planes_towards_faster_peers_after_measurements() {
    let mut lb = LoadBalancer::new(vec![1.0, 1.0, 1.0]);
    // Peer 2 is measured 3x faster than the others.
    lb.record(0, 10_000, 1.0);
    lb.record(1, 10_000, 1.0);
    lb.record(2, 30_000, 1.0);
    let assignment = lb.propose_assignment(30);
    assert!(assignment.count(2) > assignment.count(0));
    assert!(assignment.count(2) > assignment.count(1));
    let total: usize = (0..3).map(|r| assignment.count(r)).sum();
    assert_eq!(total, 30);

    // A uniform assignment is flagged as imbalanced for these capacities.
    let uniform = BlockDecomposition::balanced(30, 3);
    assert!(lb.detect_imbalance(&uniform, 1.5).is_some());
}
