//! End-to-end tests of the P2PSAP protocol stack over the simulated network:
//! two peer processes exchanging data through sockets, the fabric and netem
//! impairment, covering reliability recovery and the Table I configurations.

use bytes::Bytes;
use desim::{Context, Payload, Process, ProcessId, SimDuration, SimTime, Simulator, TimerId};
use netsim::{shared_stats, Deliver, LinkSpec, NetworkFabric, NodeId, Packet, Topology, Transmit};
use p2psap::{Scheme, Socket};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A minimal peer process: sends a fixed number of payloads to its remote and
/// records everything it receives.
struct ProtoPeer {
    rank: usize,
    remote: usize,
    fabric: ProcessId,
    socket: Socket,
    to_send: Vec<Vec<u8>>,
    received: Arc<Mutex<Vec<Vec<u8>>>>,
    timer_slots: Vec<(usize, u64)>,
    armed: HashMap<(usize, u64), desim::TimerId>,
}

impl ProtoPeer {
    fn run_output(&mut self, ctx: &mut Context<'_>, out: p2psap::SocketOutput) {
        for seg in out.data {
            let packet = Packet::new(NodeId(self.rank), NodeId(self.remote), seg);
            ctx.send(self.fabric, Box::new(Transmit { packet }));
        }
        for t in out.timers {
            let slot = self.timer_slots.len() as u64;
            self.timer_slots.push((t.layer, t.tag));
            let id = ctx.set_timer(SimDuration::from_nanos(t.delay_ns), slot);
            self.armed.insert((t.layer, t.tag), id);
        }
        for key in out.cancels {
            if let Some(id) = self.armed.remove(&key) {
                ctx.cancel_timer(id);
            }
        }
    }
}

impl Process for ProtoPeer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let sends = std::mem::take(&mut self.to_send);
        for payload in sends {
            let (_, out) = self.socket.send(Bytes::from(payload), ctx.now().as_nanos());
            self.run_output(ctx, out);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, payload: Payload) {
        if let Ok(deliver) = payload.downcast::<Deliver>() {
            let out = self
                .socket
                .on_data(deliver.packet.payload, ctx.now().as_nanos());
            while let Some(p) = self.socket.receive() {
                self.received.lock().unwrap().push(p.to_vec());
            }
            self.run_output(ctx, out);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: TimerId, tag: u64) {
        let Some(&(layer, ptag)) = self.timer_slots.get(tag as usize) else {
            return;
        };
        self.armed.remove(&(layer, ptag));
        let out = self.socket.on_timer(layer, ptag, ctx.now().as_nanos());
        while let Some(p) = self.socket.receive() {
            self.received.lock().unwrap().push(p.to_vec());
        }
        self.run_output(ctx, out);
    }
}

fn run_exchange(
    topology: Topology,
    scheme: Scheme,
    messages: usize,
) -> (Vec<Vec<u8>>, netsim::NetStats) {
    let connection = topology.connection_type(NodeId(0), NodeId(1));
    let received = Arc::new(Mutex::new(Vec::new()));
    let stats = shared_stats();
    let mut sim = Simulator::new(3);
    let fabric_id = ProcessId(2);
    let sender = ProtoPeer {
        rank: 0,
        remote: 1,
        fabric: fabric_id,
        socket: Socket::open(scheme, connection),
        to_send: (0..messages)
            .map(|i| format!("payload-{i}").into_bytes())
            .collect(),
        received: Arc::new(Mutex::new(Vec::new())),
        timer_slots: Vec::new(),
        armed: HashMap::new(),
    };
    let receiver = ProtoPeer {
        rank: 1,
        remote: 0,
        fabric: fabric_id,
        socket: Socket::open(scheme, connection),
        to_send: Vec::new(),
        received: Arc::clone(&received),
        timer_slots: Vec::new(),
        armed: HashMap::new(),
    };
    let p0 = sim.add_process(Box::new(sender));
    let p1 = sim.add_process(Box::new(receiver));
    let fabric = NetworkFabric::new(topology, vec![p0, p1], Arc::clone(&stats));
    let fid = sim.add_process(Box::new(fabric));
    assert_eq!(fid, fabric_id);
    sim.run_until(SimTime::from_secs_f64(60.0));
    let out = received.lock().unwrap().clone();
    (out, netsim::stats_snapshot(&stats))
}

#[test]
fn synchronous_reliable_exchange_delivers_everything_in_order() {
    let (received, stats) =
        run_exchange(Topology::nicta_single_cluster(2), Scheme::Synchronous, 20);
    assert_eq!(received.len(), 20);
    for (i, payload) in received.iter().enumerate() {
        assert_eq!(payload, format!("payload-{i}").as_bytes());
    }
    // Data + acks on the wire.
    assert!(stats.intra.packets_delivered >= 40);
}

#[test]
fn reliability_recovers_from_heavy_loss() {
    // 30% loss on the only link; the synchronous reliable configuration must
    // still deliver every payload thanks to retransmissions.
    let topology = Topology::single_cluster(2, LinkSpec::ethernet_100mbps().with_loss(0.3));
    let (received, stats) = run_exchange(topology, Scheme::Synchronous, 15);
    assert_eq!(
        received.len(),
        15,
        "reliable channel must recover all losses"
    );
    assert!(
        stats.total_dropped() > 0,
        "the link should actually have dropped packets"
    );
}

#[test]
fn unreliable_asynchronous_channel_tolerates_loss_without_retransmission() {
    // Same lossy link, asynchronous scheme across clusters => unreliable
    // channel: some payloads are lost and never retransmitted.
    let topology = Topology::two_clusters(
        2,
        LinkSpec::ethernet_100mbps(),
        LinkSpec::internet_100ms().with_loss(0.4),
    );
    let (received, stats) = run_exchange(topology, Scheme::Asynchronous, 50);
    assert!(
        received.len() < 50,
        "with 40% loss some messages must be missing"
    );
    assert!(!received.is_empty(), "but not everything is lost");
    assert!(stats.inter.packets_dropped > 0);
    // No retransmissions: the number of packets put on the wire equals the
    // number of application sends (50), within the single original attempt.
    assert_eq!(stats.inter.packets_sent, 50);
}

#[test]
fn hybrid_scheme_picks_different_configs_per_connection() {
    let sock_intra = Socket::open(Scheme::Hybrid, netsim::ConnectionType::IntraCluster);
    let sock_inter = Socket::open(Scheme::Hybrid, netsim::ConnectionType::InterCluster);
    assert_eq!(
        sock_intra.config().mode,
        p2psap::CommunicationMode::Synchronous
    );
    assert_eq!(
        sock_inter.config().mode,
        p2psap::CommunicationMode::Asynchronous
    );
    assert_eq!(
        sock_intra.config().reliability,
        p2psap::Reliability::Reliable
    );
    assert_eq!(
        sock_inter.config().reliability,
        p2psap::Reliability::Unreliable
    );
}
