//! End-to-end tests of the UDP runtime: the obstacle application running
//! over real localhost sockets, checked for agreement with the in-process
//! backends. These are the tests CI's `udp-e2e` job runs with a hard
//! timeout (a hung handshake must fail fast, not stall the workflow).

use p2pdc::{
    run_iterative_udp, run_obstacle_on, ObstacleExperiment, ObstacleTask, RuntimeKind, Scheme,
    UdpRunConfig,
};
use std::sync::Arc;

/// Fixed-seed cross-runtime agreement: the synchronous scheme converges at
/// a problem-determined iteration, so the loopback and UDP backends must
/// agree on it. The peer that *detects* convergence stops at exactly that
/// iteration, making the per-run **minimum** relaxation count the
/// runtime-independent invariant. Individual wall-clock peers may overshoot
/// it: a peer only waits on its direct neighbours, so before the stop
/// broadcast lands it can run ahead of the slowest peer by up to the
/// topology diameter (observed +2 on a loaded 4-peer line).
#[test]
fn udp_and_loopback_agree_on_synchronous_relaxation_counts() {
    let exp = ObstacleExperiment::new(10, Scheme::Synchronous, 4, 1);
    let loopback = run_obstacle_on(&exp, RuntimeKind::Loopback);
    let udp = run_obstacle_on(&exp, RuntimeKind::Udp);
    assert!(loopback.measurement.converged && udp.measurement.converged);
    let min = |m: &p2pdc::RunMeasurement| m.relaxations_per_peer.iter().copied().min().unwrap_or(0);
    assert_eq!(
        min(&loopback.measurement),
        min(&udp.measurement),
        "the convergence iteration differs: loopback {:?} vs udp {:?}",
        loopback.measurement.relaxations_per_peer,
        udp.measurement.relaxations_per_peer
    );
    // Overshoot past the convergence iteration is bounded by the diameter.
    let peers = exp.peers as u64;
    assert!(
        udp.measurement.max_relaxations() < min(&udp.measurement) + peers,
        "udp overshoot beyond the topology diameter: {:?}",
        udp.measurement.relaxations_per_peer
    );
    // Both backends assemble a solution satisfying the fixed-point equation.
    assert!(loopback.measurement.residual < exp.tolerance * 2.0);
    assert!(
        udp.measurement.residual < exp.tolerance * 2.0,
        "udp residual {}",
        udp.measurement.residual
    );
}

/// At n = 16 a boundary plane is 16²·8 + 16 = 2064 bytes — above the
/// 1200-byte fragment cap — so every P2P_Send crosses the socket as
/// multiple datagrams and the run exercises reassembly end to end.
#[test]
fn multi_fragment_boundary_planes_reassemble_end_to_end() {
    let exp = ObstacleExperiment::new(16, Scheme::Synchronous, 2, 1);
    let loopback = run_obstacle_on(&exp, RuntimeKind::Loopback);
    let udp = run_obstacle_on(&exp, RuntimeKind::Udp);
    assert!(udp.measurement.converged);
    assert!(
        (udp.measurement.max_relaxations() as i64 - loopback.measurement.max_relaxations() as i64)
            .abs()
            <= 1,
        "fragmented run diverged: udp {:?} vs loopback {:?}",
        udp.measurement.relaxations_per_peer,
        loopback.measurement.relaxations_per_peer
    );
    assert!(udp.measurement.residual < exp.tolerance * 2.0);
}

/// The asynchronous scheme across two clusters selects the unreliable
/// inter-cluster channel (Table I), which tolerates genuine datagram loss:
/// with the shim dropping 5% of traffic the run still converges to an
/// accurate solution, using the freshest updates that do arrive.
#[test]
fn asynchronous_two_cluster_run_tolerates_real_datagram_loss() {
    let n = 10usize;
    let peers = 2usize;
    let problem = Arc::new(obstacle::ObstacleProblem::membrane(n));
    let config =
        UdpRunConfig::two_clusters(Scheme::Asynchronous, peers).with_impairment(0.05, 0.05);
    let outcome = run_iterative_udp(&config, |rank| {
        Box::new(ObstacleTask::new(Arc::clone(&problem), peers, rank))
    });
    assert!(outcome.measurement.converged, "lossy run did not converge");
    assert!(
        outcome.datagrams_dropped > 0,
        "the loss shim never fired — the scenario is not exercising loss"
    );
    let solution = p2pdc::assemble_solution(n, &outcome.results);
    let residual = obstacle::fixed_point_residual(&problem, &solution, problem.optimal_delta());
    assert!(
        residual < 1e-2,
        "residual {residual} beyond the asynchronous staleness bound"
    );
}

/// The hybrid scheme over UDP: intra-cluster neighbours stay reliable and
/// waited-for, the cross-cluster link runs asynchronously — on real sockets.
#[test]
fn hybrid_scheme_converges_over_udp_across_two_clusters() {
    let exp = ObstacleExperiment::new(10, Scheme::Hybrid, 4, 2);
    let result = run_obstacle_on(&exp, RuntimeKind::Udp);
    assert!(result.measurement.converged);
    assert_eq!(result.measurement.peers, 4);
    assert!(
        result.measurement.residual < 1e-2,
        "residual {}",
        result.measurement.residual
    );
}
