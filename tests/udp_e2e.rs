//! End-to-end tests of the UDP runtime: the obstacle application running
//! over real localhost sockets, checked for agreement with the in-process
//! backends. These are the tests CI's `udp-e2e` job runs with a hard
//! timeout (a hung handshake must fail fast, not stall the workflow).

use p2pdc::{
    run_obstacle_on, run_on, BackendExtras, ObstacleExperiment, ObstacleInstance, ObstacleParams,
    ObstacleWorkload, RunConfig, RuntimeKind, Scheme,
};

/// Fixed-seed cross-runtime agreement: the synchronous scheme converges at
/// a problem-determined iteration, so the loopback and UDP backends must
/// agree on it. The peer that *detects* convergence stops at exactly that
/// iteration, making the per-run **minimum** relaxation count the
/// runtime-independent invariant. Individual wall-clock peers may overshoot
/// it: a peer only waits on its direct neighbours, so before the stop
/// broadcast lands it can run ahead of the slowest peer by up to the
/// topology diameter (observed +2 on a loaded 4-peer line).
#[test]
fn udp_and_loopback_agree_on_synchronous_relaxation_counts() {
    let exp = ObstacleExperiment::new(10, Scheme::Synchronous, 4, 1);
    let loopback = run_obstacle_on(&exp, RuntimeKind::Loopback);
    let udp = run_obstacle_on(&exp, RuntimeKind::Udp);
    assert!(loopback.measurement.converged && udp.measurement.converged);
    let min = |m: &p2pdc::RunMeasurement| m.relaxations_per_peer.iter().copied().min().unwrap_or(0);
    assert_eq!(
        min(&loopback.measurement),
        min(&udp.measurement),
        "the convergence iteration differs: loopback {:?} vs udp {:?}",
        loopback.measurement.relaxations_per_peer,
        udp.measurement.relaxations_per_peer
    );
    // Overshoot past the convergence iteration is bounded by the diameter.
    let peers = exp.peers as u64;
    assert!(
        udp.measurement.max_relaxations() < min(&udp.measurement) + peers,
        "udp overshoot beyond the topology diameter: {:?}",
        udp.measurement.relaxations_per_peer
    );
    // Both backends assemble a solution satisfying the fixed-point equation.
    assert!(loopback.measurement.residual < exp.tolerance * 2.0);
    assert!(
        udp.measurement.residual < exp.tolerance * 2.0,
        "udp residual {}",
        udp.measurement.residual
    );
}

/// At n = 16 a boundary plane is 16²·8 + 16 = 2064 bytes — above the
/// 1200-byte fragment cap — so every P2P_Send crosses the socket as
/// multiple datagrams and the run exercises reassembly end to end.
#[test]
fn multi_fragment_boundary_planes_reassemble_end_to_end() {
    let exp = ObstacleExperiment::new(16, Scheme::Synchronous, 2, 1);
    let loopback = run_obstacle_on(&exp, RuntimeKind::Loopback);
    let udp = run_obstacle_on(&exp, RuntimeKind::Udp);
    assert!(udp.measurement.converged);
    assert!(
        (udp.measurement.max_relaxations() as i64 - loopback.measurement.max_relaxations() as i64)
            .abs()
            <= 1,
        "fragmented run diverged: udp {:?} vs loopback {:?}",
        udp.measurement.relaxations_per_peer,
        loopback.measurement.relaxations_per_peer
    );
    assert!(udp.measurement.residual < exp.tolerance * 2.0);
}

/// The asynchronous scheme across two clusters selects the unreliable
/// inter-cluster channel (Table I), which tolerates genuine datagram loss:
/// with the shim dropping 5% of traffic the run still converges to an
/// accurate solution, using the freshest updates that do arrive.
#[test]
fn asynchronous_two_cluster_run_tolerates_real_datagram_loss() {
    let n = 10usize;
    let peers = 2usize;
    let workload = ObstacleWorkload::new(ObstacleParams {
        n,
        peers,
        scheme: Scheme::Asynchronous,
        instance: ObstacleInstance::Membrane,
    });
    let config = RunConfig::quick_two_clusters(Scheme::Asynchronous, peers).with_extras(
        BackendExtras::Udp {
            loss_probability: 0.05,
            reorder_probability: 0.05,
        },
    );
    let result = run_on(&workload, &config, RuntimeKind::Udp);
    assert!(result.measurement.converged, "lossy run did not converge");
    assert!(
        result.datagrams_dropped > 0,
        "the loss shim never fired — the scenario is not exercising loss"
    );
    assert!(
        result.measurement.residual < 1e-2,
        "residual {} beyond the asynchronous staleness bound",
        result.measurement.residual
    );
}

/// The hybrid scheme over UDP: intra-cluster neighbours stay reliable and
/// waited-for, the cross-cluster link runs asynchronously — on real sockets.
#[test]
fn hybrid_scheme_converges_over_udp_across_two_clusters() {
    let exp = ObstacleExperiment::new(10, Scheme::Hybrid, 4, 2);
    let result = run_obstacle_on(&exp, RuntimeKind::Udp);
    assert!(result.measurement.converged);
    assert_eq!(result.measurement.peers, 4);
    assert!(
        result.measurement.residual < 1e-2,
        "residual {}",
        result.measurement.residual
    );
}
