//! Integration test of the efficiency shapes reported in Figures 5 and 6:
//! synchronous efficiency collapses across the 100 ms inter-cluster path and
//! with many peers; asynchronous efficiency is barely affected by the second
//! cluster; hybrid sits in between.

use p2pdc::{run_obstacle_experiment, ComputeModel, ObstacleExperiment, ObstacleInstance, Scheme};

const N: usize = 16;

fn experiment(scheme: Scheme, peers: usize, clusters: usize) -> ObstacleExperiment {
    ObstacleExperiment {
        n: N,
        instance: ObstacleInstance::Membrane,
        scheme,
        peers,
        clusters,
        tolerance: 1e-4,
        // Granularity-preserving scaling: each sweep costs what a 96-grid
        // sweep would, so the communication/computation ratio matches the
        // paper's experiments (see DESIGN.md / EXPERIMENTS.md).
        compute: ComputeModel::calibrated(50.0 * (96.0f64 / N as f64).powi(3)),
        seed: 42,
    }
}

fn elapsed(scheme: Scheme, peers: usize, clusters: usize) -> f64 {
    let m = run_obstacle_experiment(&experiment(scheme, peers, clusters)).measurement;
    assert!(
        m.converged,
        "{scheme} / {peers} peers / {clusters} clusters did not converge"
    );
    m.elapsed.as_secs_f64()
}

#[test]
fn synchronous_suffers_across_clusters_asynchronous_does_not() {
    let peers = 8;
    let sync_1 = elapsed(Scheme::Synchronous, peers, 1);
    let sync_2 = elapsed(Scheme::Synchronous, peers, 2);
    let async_1 = elapsed(Scheme::Asynchronous, peers, 1);
    let async_2 = elapsed(Scheme::Asynchronous, peers, 2);

    // Synchronous: the 100 ms path slows the run down substantially.
    assert!(
        sync_2 > 1.5 * sync_1,
        "synchronous across clusters ({sync_2:.2}s) should be much slower than in one cluster ({sync_1:.2}s)"
    );
    // Asynchronous: the second cluster costs far less than it costs the
    // synchronous scheme. (At this reduced test scale the asynchronous
    // termination detection pays a roughly constant extra WAN round-trip,
    // so a factor-2 margin is used; at the harness scale — see
    // EXPERIMENTS.md — the one- and two-cluster asynchronous times are
    // nearly identical, as in the paper.)
    assert!(
        async_2 < 2.0 * async_1,
        "asynchronous should change far less across clusters ({async_1:.2}s -> {async_2:.2}s)"
    );
    // And asynchronous beats synchronous on the two-cluster topology by a wide
    // margin.
    assert!(async_2 < sync_2 / 3.0);
}

#[test]
fn speedup_ordering_matches_the_paper_on_two_clusters() {
    let peers = 8;
    let reference = elapsed(Scheme::Synchronous, 1, 1);
    let speedup = |t: f64| reference / t;

    let sync = speedup(elapsed(Scheme::Synchronous, peers, 2));
    let hybrid = speedup(elapsed(Scheme::Hybrid, peers, 2));
    let asynchronous = speedup(elapsed(Scheme::Asynchronous, peers, 2));

    // Both adaptive schemes dominate the synchronous scheme across the WAN,
    // and the asynchronous scheme stays in the same league as hybrid (at the
    // harness scale it wins outright; at this reduced scale its termination
    // detection pays an extra WAN round trip, see EXPERIMENTS.md).
    assert!(
        hybrid > 2.0 * sync,
        "hybrid speedup {hybrid:.2} should dominate synchronous {sync:.2} across the WAN"
    );
    assert!(
        asynchronous > 2.0 * sync,
        "asynchronous speedup {asynchronous:.2} should dominate synchronous {sync:.2} across the WAN"
    );
    assert!(
        asynchronous > 0.5 * hybrid,
        "asynchronous speedup {asynchronous:.2} should be comparable to hybrid {hybrid:.2}"
    );
    // The asynchronous scheme achieves a real speedup.
    assert!(
        asynchronous > 1.5,
        "asynchronous speedup {asynchronous:.2} too small"
    );
}

#[test]
fn synchronous_efficiency_decreases_with_peer_count() {
    let reference = elapsed(Scheme::Synchronous, 1, 1);
    let eff = |peers: usize| reference / elapsed(Scheme::Synchronous, peers, 1) / peers as f64;
    let e2 = eff(2);
    let e8 = eff(8);
    assert!(
        e8 < e2,
        "synchronous efficiency should degrade with the peer count ({e2:.2} -> {e8:.2})"
    );
}
