//! End-to-end tests of the decentralized control plane: SWIM gossip
//! membership plus distributed convergence detection, checked against the
//! centralized detector on every backend.
//!
//! The invariant under test is *losslessness*: the digest decision may lag
//! the central fold (peers keep relaxing while rumors spread — the decision
//! lag `repro gossip` measures), but it can never fire on evidence the
//! central fold would have rejected, so the per-run minimum relaxation
//! count under gossip is at least the centralized one.

use p2pdc::{run_on, ChurnPlan, RunConfig, RunMeasurement, RuntimeKind, Scheme, WorkloadKind};

/// The convergence iteration of a run: the peer that decides stops at
/// exactly that iteration, so the per-run minimum is the invariant
/// (wall-clock peers may overshoot by the propagation delay).
fn min_relaxations(m: &RunMeasurement) -> u64 {
    m.relaxations_per_peer.iter().copied().min().unwrap_or(0)
}

/// Gossip vs centralized on the synchronous scheme, for all three workloads
/// on all four e2e backends: both converge, and the gossip stop never fires
/// earlier than the centralized one (with a bounded decision lag).
#[test]
fn gossip_sync_decision_is_lossless_on_every_backend_and_workload() {
    for (kind, size, tolerance) in [
        (WorkloadKind::Obstacle, 10, 1e-4),
        (WorkloadKind::Heat, 16, 1e-4),
        (WorkloadKind::PageRank, 120, 1e-8),
    ] {
        let peers = 4;
        let workload = kind.build(size, peers);
        let mut config = RunConfig::single_cluster(Scheme::Synchronous, peers);
        config.tolerance = tolerance;
        for runtime in [
            RuntimeKind::Loopback,
            RuntimeKind::Sim,
            RuntimeKind::Udp,
            RuntimeKind::Reactor,
        ] {
            let centralized = run_on(workload.as_ref(), &config, runtime);
            let gossip = run_on(workload.as_ref(), &config.clone().with_gossip(2), runtime);
            let label = format!("{} / {}", kind.label(), runtime.label());
            assert!(
                centralized.measurement.converged,
                "{label}: centralized run did not converge"
            );
            assert!(
                gossip.measurement.converged,
                "{label}: gossip run did not converge"
            );
            let min_c = min_relaxations(&centralized.measurement);
            let min_g = min_relaxations(&gossip.measurement);
            assert!(
                min_g >= min_c,
                "{label}: gossip stopped at {min_g} < centralized {min_c} — \
                 the digest fired on evidence the central fold rejects"
            );
            assert!(
                min_g <= min_c + 150,
                "{label}: gossip decision lag {} exceeds the propagation bound \
                 (centralized {min_c}, gossip {min_g})",
                min_g - min_c
            );
            // The decentralized stop still yields a valid solution.
            assert!(
                gossip.measurement.residual < tolerance * 10.0,
                "{label}: gossip residual {}",
                gossip.measurement.residual
            );
        }
    }
}

/// A mid-run crash on the wall-clock backends with the ping server retired:
/// the victim's recovery can only be granted through SWIM death verdicts
/// (there is no monitor thread under gossip), so a completed recovery
/// proves gossip-only eviction end to end.
#[test]
fn gossip_only_eviction_recovers_a_crashed_peer_on_wall_clock_backends() {
    let peers = 4;
    let workload = WorkloadKind::Obstacle.build(10, peers);
    let mut config = RunConfig::quick(Scheme::Asynchronous, peers).with_gossip(2);
    config.churn = Some(ChurnPlan::kill(1, 12).with_checkpoint_interval(5));
    for runtime in [RuntimeKind::Udp, RuntimeKind::Reactor] {
        let result = run_on(workload.as_ref(), &config, runtime);
        let m = &result.measurement;
        let label = runtime.label();
        assert!(m.converged, "{label}: faulty gossip run did not converge");
        assert_eq!(m.crashes, 1, "{label}: crash count");
        assert_eq!(
            m.recoveries, 1,
            "{label}: the victim was not revived — SWIM eviction never granted recovery"
        );
        assert!(m.downtime_s > 0.0, "{label}: downtime not measured");
        assert!(
            m.residual < config.tolerance * 10.0,
            "{label}: residual {} exceeds the async staleness bound",
            m.residual
        );
    }
}

/// The seeded backends stay bit-for-bit deterministic under gossip: same
/// seed, same probe targets, same rumor exchanges, same decision — twice.
#[test]
fn gossip_runs_are_deterministic_on_seeded_backends() {
    let peers = 4;
    let workload = WorkloadKind::Obstacle.build(10, peers);
    let mut config = RunConfig::quick(Scheme::Asynchronous, peers).with_gossip(2);
    config.churn = Some(ChurnPlan::kill(1, 12).with_checkpoint_interval(5));
    for runtime in [RuntimeKind::Loopback, RuntimeKind::Sim] {
        let a = run_on(workload.as_ref(), &config, runtime);
        let b = run_on(workload.as_ref(), &config, runtime);
        let label = runtime.label();
        assert!(a.measurement.converged, "{label}: run did not converge");
        assert_eq!(a.measurement.crashes, 1, "{label}: crash count");
        assert_eq!(a.measurement.recoveries, 1, "{label}: recovery count");
        assert_eq!(
            a.measurement.relaxations_per_peer, b.measurement.relaxations_per_peer,
            "{label}: same seed diverged on relaxation counts"
        );
        assert_eq!(
            a.solution, b.solution,
            "{label}: same seed diverged on the assembled solution"
        );
    }
}
