//! End-to-end coverage of the scenario fuzzer (`p2pdc::scenario`).
//!
//! Four layers of defence, mirroring the CI `fuzz-smoke` job from inside
//! the test suite:
//!
//! 1. A pinned-seed smoke batch of generated plans must hold every oracle
//!    (the full 40-case batch runs as `repro fuzz --seed-batch ci`; the
//!    in-test subset covers one full pass of the workload × scheme ×
//!    control-plane grid in debug-build time).
//! 2. One named regression test per minimal repro the fuzzer surfaced
//!    during development, each carrying the shrunk plan verbatim.
//! 3. The cross-runtime agreement the sync-agreement oracle generalizes:
//!    a split-brain-then-heal plan converges with identical synchronous
//!    relaxation counts on both deterministic backends, for all three
//!    workloads.
//! 4. Codec corruption sweeps: every single-bit flip of a framed segment
//!    or gossip message must fail decode — never panic, never be consumed
//!    as data.
//!
//! An `#[ignore]`d known-bad plan keeps the detect-and-shrink pipeline
//! honest: an unbounded split-brain buried in noise events must be caught
//! by the oracles and shrink back down to the one load-bearing event.

use bytes::Bytes;
use p2pdc::gossip::GossipKind;
use p2pdc::runtime::udp::Datagram;
use p2pdc::scenario::{generate_case, shrink};
use p2pdc::{
    check_case, run_on, ChurnPlan, ControlPlane, FuzzCase, GossipMessage, RuntimeKind, Scheme,
    WorkloadKind,
};
use p2psap::data::wire::WireSegment;

/// Master seed of the pinned batch — the same one `repro fuzz
/// --seed-batch ci` uses, so an in-test failure reproduces immediately
/// under the CLI (`repro fuzz --only <index>`).
const CI_MASTER_SEED: u64 = 42;

/// One full cycle of the generator grid: 3 workloads × 3 schemes under the
/// centralized control plane, then the first gossip rows. Indices 7 and 8
/// are the corruption-retransmission repros of the development batch, so
/// the smoke subset re-runs them on every `cargo test`.
const SMOKE_CASES: usize = 12;

#[test]
fn pinned_seed_smoke_batch_holds_every_oracle() {
    for index in 0..SMOKE_CASES {
        let case = generate_case(CI_MASTER_SEED, index);
        let violations = check_case(&case);
        assert!(
            violations.is_empty(),
            "case {index} ({}) violated: {violations:?}",
            case.label()
        );
    }
}

/// Minimal repro of batch case 022 (`heat/Synchronous/central`): one
/// corruption burst on a synchronous run. The checksum layer rightly drops
/// the corrupted segments, the reliable channel retransmits them after its
/// 600 ms RTO — but the loopback driver charged the idle jump to that
/// ns-denominated deadline against the wedge guard's processed-event gap
/// and declared the run wedged before the retransmission could fire.
#[test]
fn corrupted_sync_segments_are_retransmitted_on_loopback() {
    let case = FuzzCase {
        seed: 16026397495608003567,
        workload: WorkloadKind::Heat,
        size: 11,
        peers: 4,
        scheme: Scheme::Synchronous,
        control: ControlPlane::Centralized,
        plan: ChurnPlan::new(vec![])
            .with_checkpoint_interval(4)
            .with_detection_delay_ns(1_000_000)
            .with_repartition(true)
            .with_corruption(2, 1, 3),
    };
    let violations = check_case(&case);
    assert!(violations.is_empty(), "{violations:?}");
}

/// Minimal repro of batch case 007 (`heat/Hybrid/central`, failing through
/// its gossip counterpart): with live gossip chatter keeping the event
/// clock busy, the idle jump never reached the retransmission deadline at
/// all — 600 ms of RTO was 600 million loopback events away. Session
/// protocol timers are now mapped onto the event clock at a fixed exchange
/// rate, putting retransmissions a few thousand events out.
#[test]
fn corrupted_segments_under_gossip_chatter_still_retransmit() {
    let case = FuzzCase {
        seed: 17645127581010058897,
        workload: WorkloadKind::Heat,
        size: 12,
        peers: 3,
        scheme: Scheme::Hybrid,
        control: ControlPlane::Centralized,
        plan: ChurnPlan::new(vec![])
            .with_checkpoint_interval(3)
            .with_detection_delay_ns(1_000_000)
            .with_repartition(true)
            .with_corruption(2, 7, 3),
    };
    let violations = check_case(&case);
    assert!(violations.is_empty(), "{violations:?}");
}

/// Minimal repro of the development batch's partition × gossip failure: a
/// healed split left both sides holding symmetric death verdicts — SWIM
/// rumors cannot refute a death at the same incarnation, the probe
/// rotation skips dead members, so no first-hand contact ever crossed the
/// healed boundary and the digest never decided. The membership layer now
/// re-probes one dead member every few rounds (the "lazarus probe").
#[test]
fn a_healed_partition_converges_under_the_gossip_control_plane() {
    let case = FuzzCase {
        seed: 8987352281580044895,
        workload: WorkloadKind::PageRank,
        size: 24,
        peers: 4,
        scheme: Scheme::Synchronous,
        control: ControlPlane::Gossip { fanout: 2 },
        plan: ChurnPlan::new(vec![])
            .with_checkpoint_interval(5)
            .with_detection_delay_ns(1_000_000)
            .with_partition(0, 4, &[0, 1], 1_500_000, 250),
    };
    let violations = check_case(&case);
    assert!(violations.is_empty(), "{violations:?}");
}

/// Minimal repro of batch case 006 (`obstacle/Hybrid`, crash + partition +
/// flapping link): after the crash victim's recovery was scheduled, a
/// stale gossip probe deadline (already escalated to indirect probes)
/// shadowed the strictly-later recovery and probe-round deadlines in the
/// loopback idle jump, ending a run that still had scheduled work with
/// zero relaxations. The gossip node now reports the post-escalation ack
/// edge and the idle jump only considers strictly-future deadlines.
#[test]
fn crash_under_partition_and_flap_still_converges_under_gossip() {
    let case = FuzzCase {
        seed: 13309400702768586487,
        workload: WorkloadKind::Obstacle,
        size: 8,
        peers: 3,
        scheme: Scheme::Hybrid,
        control: ControlPlane::Gossip { fanout: 2 },
        plan: ChurnPlan::kill(1, 9)
            .with_checkpoint_interval(3)
            .with_detection_delay_ns(1_000_000)
            .with_partition(0, 7, &[0, 2], 2_657_809, 302)
            .with_flapping_link(1, 2, 0, 556_142, 57, 2),
    };
    let violations = check_case(&case);
    assert!(violations.is_empty(), "{violations:?}");
}

/// The sync-agreement invariant, pinned explicitly for every workload: a
/// split-brain that heals within budget leaves the synchronous convergence
/// iteration problem-determined, so the virtual-time and event-count
/// backends must converge at the same minimum relaxation count.
#[test]
fn split_brain_then_heal_agrees_across_deterministic_backends() {
    for workload in WorkloadKind::ALL {
        let size = match workload {
            WorkloadKind::Obstacle => 8,
            WorkloadKind::Heat => 10,
            WorkloadKind::PageRank => 24,
        };
        let case = FuzzCase {
            seed: 9,
            workload,
            size,
            peers: 4,
            scheme: Scheme::Synchronous,
            control: ControlPlane::Centralized,
            plan: ChurnPlan::new(vec![])
                .with_detection_delay_ns(1_000_000)
                .with_partition(0, 3, &[0, 1], 1_200_000, 180),
        };
        let built = case.workload.build(case.size, case.peers);
        let config = case.config();
        let sim = run_on(built.as_ref(), &config, RuntimeKind::Sim).measurement;
        let loopback = run_on(built.as_ref(), &config, RuntimeKind::Loopback).measurement;
        assert!(sim.converged, "{workload} sim did not converge");
        assert!(loopback.converged, "{workload} loopback did not converge");
        assert_eq!(
            sim.relaxations_per_peer.iter().min(),
            loopback.relaxations_per_peer.iter().min(),
            "{workload}: sim {:?} vs loopback {:?}",
            sim.relaxations_per_peer,
            loopback.relaxations_per_peer
        );
    }
}

/// Every single-bit flip of a framed data segment must fail the trailing
/// checksum: FNV-1a over the frame is invertible per byte step, so two
/// same-length frames differing anywhere verify differently. This is the
/// property the corruption fault model leans on when it declares corrupted
/// traffic "effectively lost, never consumed".
#[test]
fn every_single_bit_flip_of_a_wire_segment_fails_decode() {
    let payload = Bytes::from((0u16..96).flat_map(u16::to_be_bytes).collect::<Vec<u8>>());
    let frame = WireSegment::data(7, true, 123_456_789, payload).encode();
    for at in 0..frame.len() {
        for bit in 0..8 {
            let mut corrupted = frame.to_vec();
            corrupted[at] ^= 1 << bit;
            assert!(
                WireSegment::decode(Bytes::from(corrupted)).is_none(),
                "flip at byte {at} bit {bit} decoded"
            );
        }
    }
}

/// The same exhaustive sweep over an encoded gossip message: a flipped
/// frame must never merge a phantom rumor or digest row.
#[test]
fn every_single_bit_flip_of_a_gossip_frame_fails_decode() {
    let message = GossipMessage {
        kind: GossipKind::Ack,
        from: 3,
        incarnation: 9,
        subject: 1,
        rumors: vec![
            p2pdc::Rumor {
                subject: 2,
                incarnation: 4,
                status: p2pdc::MemberStatus::Suspect,
            },
            p2pdc::Rumor {
                subject: 0,
                incarnation: 1,
                status: p2pdc::MemberStatus::Alive,
            },
        ],
        digest: vec![p2pdc::DigestRow {
            rank: 3,
            generation: 1,
            epoch: 2,
            latest: 40,
            clean_since: 31,
            stable_streak: 9,
            flags: 0b11,
            points: 1_024,
            busy_ns: 77_000,
        }],
    };
    let frame = message.encode();
    for at in 0..frame.len() {
        for bit in 0..8 {
            let mut corrupted = frame.clone();
            corrupted[at] ^= 1 << bit;
            assert!(
                GossipMessage::decode(&corrupted).is_none(),
                "flip at byte {at} bit {bit} decoded"
            );
        }
    }
}

/// Datagram headers carry no checksum of their own (integrity is
/// end-to-end, in the framed segment each fragment carries), so the
/// guarantee at this layer is weaker but still load-bearing: no flip may
/// panic the decoder, and a flip that still parses as a fragment must
/// never yield a segment the inner codec accepts unless the flip left the
/// segment bytes untouched.
#[test]
fn flipped_fragment_datagrams_never_smuggle_corrupted_segments() {
    let segment = WireSegment::data(3, true, 55_555, Bytes::from(vec![0xA5; 64])).encode();
    let datagram = Datagram::Fragment {
        from: 1,
        msg_id: 12,
        frag_index: 0,
        frag_count: 1,
        payload: segment.to_vec(),
    };
    let frame = datagram.encode();
    let original = WireSegment::decode(segment.clone()).expect("clean segment decodes");
    for at in 0..frame.len() {
        for bit in 0..8 {
            let mut corrupted = frame.clone();
            corrupted[at] ^= 1 << bit;
            if let Some(Datagram::Fragment { payload, .. }) = Datagram::decode(&corrupted) {
                if let Some(decoded) = WireSegment::decode(Bytes::from(payload)) {
                    assert_eq!(
                        decoded, original,
                        "flip at byte {at} bit {bit} consumed as data"
                    );
                }
            }
        }
    }
}

/// The detect-and-shrink pipeline, kept honest with a deliberately broken
/// plan: an unbounded split-brain (its heal beyond any budget) buried
/// under two harmless noise events. The oracles must flag it and greedy
/// shrinking must strip the noise down to the one load-bearing event.
/// Ignored by default: shrinking re-runs the oracle suite against a
/// non-converging plan dozens of times (minutes, not seconds).
#[test]
#[ignore = "shrinks a non-converging plan: minutes of deliberate wedge runs"]
fn a_known_bad_plan_is_caught_and_shrinks_to_its_load_bearing_event() {
    let case = FuzzCase {
        seed: 11,
        workload: WorkloadKind::Obstacle,
        size: 8,
        peers: 3,
        scheme: Scheme::Synchronous,
        control: ControlPlane::Centralized,
        plan: ChurnPlan::new(vec![])
            .with_detection_delay_ns(1_000_000)
            .with_partition(0, 2, &[0], 1 << 40, 1 << 40)
            .with_asym_latency(1, 3, 2, 2.0)
            .with_flapping_link(2, 5, 1, 400_000, 40, 2),
    };
    let violations = check_case(&case);
    assert!(
        violations.iter().any(|v| v.oracle == "converges"),
        "unbounded split-brain must be caught: {violations:?}"
    );
    let minimal = shrink(&case);
    assert!(
        minimal.plan.events.len() <= 3,
        "shrink left {} events",
        minimal.plan.events.len()
    );
    assert!(
        minimal
            .plan
            .events
            .iter()
            .any(|e| matches!(e.kind, p2pdc::ChurnEventKind::Partition { .. })),
        "the load-bearing partition must survive shrinking: {:?}",
        minimal.plan.events
    );
    assert!(
        !check_case(&minimal).is_empty(),
        "the shrunk plan must still fail"
    );
}
