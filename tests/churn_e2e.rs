//! End-to-end tests of the peer-volatility subsystem: seeded crashes
//! injected into live runs on every backend, with checkpoint recovery,
//! scheme-correct semantics (asynchronous runs absorb the stale restart,
//! synchronous runs roll back) and cross-runtime agreement on the recovery
//! counts.

use p2pdc::{run_on, ChurnPlan, RunConfig, RuntimeKind, Scheme, WorkloadKind};

/// The crash point of the e2e scenarios: ~30% of the fault-free synchronous
/// convergence iteration of the obstacle workload at this size (measured
/// from a baseline run inside each test, so the tests do not hard-code
/// solver iteration counts).
fn crash_at_fraction(baseline_iterations: u64, fraction: f64) -> u64 {
    ((baseline_iterations as f64 * fraction) as u64).max(2)
}

fn obstacle_config(scheme: Scheme, peers: usize) -> RunConfig {
    RunConfig::quick(scheme, peers)
}

/// The same seeded crash produces identical recovery counts on the two
/// deterministic backends, and both faulty runs still converge to the same
/// residual quality as the fault-free baseline.
#[test]
fn loopback_and_sim_agree_on_recovery_counts_for_the_same_seeded_crash() {
    let peers = 4;
    let workload = WorkloadKind::Obstacle.build(10, peers);
    let clean = obstacle_config(Scheme::Asynchronous, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    assert!(baseline.measurement.converged);
    let crash_at = crash_at_fraction(
        baseline
            .measurement
            .relaxations_per_peer
            .iter()
            .min()
            .copied()
            .unwrap(),
        0.3,
    );

    let mut faulty = clean.clone();
    faulty.churn =
        Some(ChurnPlan::kill(1, crash_at).with_checkpoint_interval((crash_at / 2).max(1)));
    let loopback = run_on(workload.as_ref(), &faulty, RuntimeKind::Loopback);
    let sim = run_on(workload.as_ref(), &faulty, RuntimeKind::Sim);
    for (label, result) in [("loopback", &loopback), ("sim", &sim)] {
        assert!(result.measurement.converged, "{label} did not converge");
        assert_eq!(result.measurement.crashes, 1, "{label} crash count");
        assert!(
            result.measurement.residual < clean.tolerance * 10.0,
            "{label}: residual {} exceeds the async staleness bound",
            result.measurement.residual
        );
        assert!(result.measurement.downtime_s > 0.0, "{label} downtime");
    }
    assert_eq!(
        loopback.measurement.recoveries, sim.measurement.recoveries,
        "the deterministic backends disagree on recovery counts"
    );
    assert_eq!(loopback.measurement.rollbacks, sim.measurement.rollbacks);
}

/// An asynchronous obstacle run with one peer killed at ~30% progress meets
/// the same residual tolerance as the fault-free run, on all four backends —
/// the paper's headline fault-tolerance claim.
#[test]
fn async_obstacle_run_survives_a_mid_run_crash_on_every_backend() {
    let peers = 3;
    let workload = WorkloadKind::Obstacle.build(10, peers);
    let clean = obstacle_config(Scheme::Asynchronous, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    assert!(baseline.measurement.converged);
    let crash_at = crash_at_fraction(
        baseline
            .measurement
            .relaxations_per_peer
            .iter()
            .min()
            .copied()
            .unwrap(),
        0.3,
    );
    let mut faulty = clean.clone();
    faulty.churn =
        Some(ChurnPlan::kill(1, crash_at).with_checkpoint_interval((crash_at / 2).max(1)));
    for runtime in RuntimeKind::ALL {
        let result = run_on(workload.as_ref(), &faulty, runtime);
        assert!(result.measurement.converged, "{runtime} did not converge");
        assert_eq!(result.measurement.crashes, 1, "{runtime} crash count");
        assert_eq!(result.measurement.recoveries, 1, "{runtime} recoveries");
        assert_eq!(
            result.measurement.rollbacks, 0,
            "{runtime}: asynchronous runs absorb the restart without rollback"
        );
        assert!(
            result.measurement.residual < clean.tolerance * 10.0,
            "{runtime}: residual {} exceeds the fault-free quality bound",
            result.measurement.residual
        );
    }
}

/// A synchronous run cannot absorb a stale restart: the recovery provably
/// rolls every peer back to a common checkpointed iteration (rollback count
/// and redone work are both visible) and the run still converges to the
/// synchronous-quality residual.
#[test]
fn sync_obstacle_run_recovers_via_rollback() {
    // Three peers, victim at one end: the middle peer has an intact
    // synchronous edge to the far peer, so the rollback must realign the
    // FIFO on an edge the crash never touched (stale queued updates there
    // would silently shift every later boundary by one iteration).
    let peers = 3;
    let workload = WorkloadKind::Obstacle.build(9, peers);
    let clean = obstacle_config(Scheme::Synchronous, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    assert!(baseline.measurement.converged);
    let baseline_iters = baseline
        .measurement
        .relaxations_per_peer
        .iter()
        .min()
        .copied()
        .unwrap();
    let crash_at = crash_at_fraction(baseline_iters, 0.5);
    let checkpoint_interval = (crash_at / 2).max(1);
    let mut faulty = clean.clone();
    faulty.churn = Some(ChurnPlan::kill(0, crash_at).with_checkpoint_interval(checkpoint_interval));
    for runtime in [RuntimeKind::Loopback, RuntimeKind::Sim] {
        let baseline = run_on(workload.as_ref(), &clean, runtime);
        let result = run_on(workload.as_ref(), &faulty, runtime);
        assert!(result.measurement.converged, "{runtime} did not converge");
        assert_eq!(result.measurement.recoveries, 1, "{runtime} recoveries");
        assert_eq!(
            result.measurement.rollbacks, 1,
            "{runtime}: synchronous recovery must roll back"
        );
        assert!(
            result.measurement.residual < clean.tolerance * 2.0,
            "{runtime}: rollback must preserve synchronous quality, residual {}",
            result.measurement.residual
        );
        // The rollback redid work. The iteration *counters* cannot show it —
        // since the generation-tagged payloads made rollbacks exact, the
        // realigned run re-converges at precisely the decomposition-invariant
        // iteration, and the restore rewinds the counters over the redone
        // stretch — but the executed-points account counts every sweep that
        // actually ran, including the rolled-back ones.
        assert!(
            result.measurement.total_points_relaxed() > baseline.measurement.total_points_relaxed(),
            "{runtime}: {} executed points vs fault-free {}",
            result.measurement.total_points_relaxed(),
            baseline.measurement.total_points_relaxed()
        );
    }
}

/// A hybrid run across two clusters absorbs a crash like an asynchronous
/// one: the recovery restores the victim without any rollback, the victim's
/// re-reported iterations must not fake iteration completeness (they are
/// first-report-only counted), and the run converges.
#[test]
fn hybrid_two_cluster_run_absorbs_a_crash_without_rollback() {
    let peers = 4;
    let workload = WorkloadKind::Obstacle.build(10, peers);
    let clean = RunConfig::quick_two_clusters(Scheme::Hybrid, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    assert!(baseline.measurement.converged);
    let crash_at = crash_at_fraction(
        baseline
            .measurement
            .relaxations_per_peer
            .iter()
            .min()
            .copied()
            .unwrap(),
        0.4,
    );
    let mut faulty = clean.clone();
    faulty.churn =
        Some(ChurnPlan::kill(2, crash_at).with_checkpoint_interval((crash_at / 2).max(1)));
    // Threads is the wall-clock case: an update lost with the dead peer's
    // inbox must come back through the reliable channel's real-time
    // retransmission, or the victim's intra-cluster edge would deadlock.
    for runtime in [
        RuntimeKind::Loopback,
        RuntimeKind::Sim,
        RuntimeKind::Threads,
    ] {
        let clean_result = run_on(workload.as_ref(), &clean, runtime);
        let result = run_on(workload.as_ref(), &faulty, runtime);
        assert!(result.measurement.converged, "{runtime} did not converge");
        assert_eq!(result.measurement.recoveries, 1, "{runtime} recoveries");
        assert_eq!(
            result.measurement.rollbacks, 0,
            "{runtime}: hybrid runs absorb the restart without rollback"
        );
        let bound = (clean_result.measurement.residual * 10.0).max(clean.tolerance * 10.0);
        assert!(
            result.measurement.residual < bound,
            "{runtime}: residual {} vs fault-free {}",
            result.measurement.residual,
            clean_result.measurement.residual
        );
    }
}

/// The same crash/rollback protocol over real UDP sockets: the victim's
/// socket genuinely dies, the bootstrap republishes its replacement port,
/// and the synchronous run converges through the rollback.
#[test]
fn sync_crash_over_real_udp_sockets_recovers_via_rollback() {
    let peers = 2;
    let workload = WorkloadKind::Obstacle.build(8, peers);
    let clean = obstacle_config(Scheme::Synchronous, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    let crash_at = crash_at_fraction(
        baseline
            .measurement
            .relaxations_per_peer
            .iter()
            .min()
            .copied()
            .unwrap(),
        0.5,
    );
    let mut faulty = clean.clone();
    faulty.churn =
        Some(ChurnPlan::kill(1, crash_at).with_checkpoint_interval((crash_at / 2).max(1)));
    let result = run_on(workload.as_ref(), &faulty, RuntimeKind::Udp);
    assert!(
        result.measurement.converged,
        "udp churn run did not converge"
    );
    assert_eq!(result.measurement.crashes, 1);
    assert_eq!(result.measurement.recoveries, 1);
    assert_eq!(result.measurement.rollbacks, 1);
    assert!(result.measurement.residual < clean.tolerance * 2.0);
    // Real downtime: detection took at least the three missed ping periods.
    assert!(
        result.measurement.downtime_s >= 0.02,
        "downtime {}s is shorter than the missed-ping detection window",
        result.measurement.downtime_s
    );
}

/// The heat and PageRank workloads survive the same mid-run crash through
/// their checkpoint/restore hooks (asynchronous scheme, deterministic
/// backends).
#[test]
fn heat_and_pagerank_survive_crashes_through_their_restore_hooks() {
    for (kind, size, tolerance) in [
        (WorkloadKind::Heat, 12, 1e-3),
        (WorkloadKind::PageRank, 48, 1e-8),
    ] {
        let peers = 3;
        let workload = kind.build(size, peers);
        let mut clean = obstacle_config(Scheme::Asynchronous, peers);
        clean.tolerance = tolerance;
        let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
        assert!(baseline.measurement.converged, "{kind} baseline");
        let crash_at = crash_at_fraction(
            baseline
                .measurement
                .relaxations_per_peer
                .iter()
                .min()
                .copied()
                .unwrap(),
            0.3,
        );
        let mut faulty = clean.clone();
        faulty.churn =
            Some(ChurnPlan::kill(2, crash_at).with_checkpoint_interval((crash_at / 2).max(1)));
        for runtime in [RuntimeKind::Loopback, RuntimeKind::Sim] {
            // "Same residual tolerance as fault-free": the bound is the
            // fault-free asynchronous run on the *same* backend (whose own
            // staleness floor depends on the backend's latency model).
            let clean_result = run_on(workload.as_ref(), &clean, runtime);
            let bound = (clean_result.measurement.residual * 10.0).max(tolerance * 10.0);
            let result = run_on(workload.as_ref(), &faulty, runtime);
            assert!(result.measurement.converged, "{kind}/{runtime}");
            assert_eq!(result.measurement.recoveries, 1, "{kind}/{runtime}");
            assert!(
                result.measurement.residual < bound,
                "{kind}/{runtime}: residual {} vs fault-free {}",
                result.measurement.residual,
                clean_result.measurement.residual
            );
        }
    }
}

/// The acceptance scenario of the elastic-membership subsystem: a seeded
/// plan with one crash *and* one join, with live repartitioning armed,
/// converges on all four backends; the measurement reports the join and at
/// least one applied re-slice (the recovery's and/or the join's).
#[test]
fn seeded_crash_plus_join_converges_with_repartition_on_every_backend() {
    for scheme in [Scheme::Asynchronous, Scheme::Synchronous] {
        let peers = 3;
        let workload = WorkloadKind::Obstacle.build(10, peers);
        let mut clean = obstacle_config(scheme, peers);
        clean.tolerance = 1e-4;
        let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
        assert!(baseline.measurement.converged);
        let baseline_iters = baseline
            .measurement
            .relaxations_per_peer
            .iter()
            .min()
            .copied()
            .unwrap();
        let crash_at = crash_at_fraction(baseline_iters, 0.3);
        let join_at = crash_at_fraction(baseline_iters, 0.6);
        let mut faulty = clean.clone();
        faulty.churn = Some(
            ChurnPlan::kill(1, crash_at)
                .with_checkpoint_interval((crash_at / 2).max(1))
                .with_repartition(true)
                .with_join(0, join_at)
                // Match the modelled detector to the sim's virtual timescale:
                // a whole run is a few ms of virtual time, so the wall-clock
                // default (30 ms) would let asynchronous survivors free-run
                // thousands of sweeps against the dead rank's frozen boundary
                // — the staleness regime the wall-clock backends genuinely
                // exhibit (see the residual bound below), not what the
                // deterministic backends are meant to measure.
                .with_detection_delay_ns(1_000_000),
        );
        for runtime in RuntimeKind::ALL {
            let result = run_on(workload.as_ref(), &faulty, runtime);
            let m = &result.measurement;
            assert!(m.converged, "{scheme:?}/{runtime} did not converge");
            assert_eq!(m.crashes, 1, "{scheme:?}/{runtime} crashes");
            assert_eq!(m.recoveries, 1, "{scheme:?}/{runtime} recoveries");
            assert_eq!(m.joins, 1, "{scheme:?}/{runtime} joins");
            assert!(
                m.repartitions >= 1,
                "{scheme:?}/{runtime}: {} repartitions",
                m.repartitions
            );
            assert!(m.moved_points > 0, "{scheme:?}/{runtime} moved points");
            assert_eq!(m.peers, peers + 1, "{scheme:?}/{runtime} grew by one");
            assert_eq!(m.relaxations_per_peer.len(), peers + 1);
            // The joined rank really worked and deposited a result: the
            // assembled solution still satisfies the scheme's quality bound.
            // Synchronous runs repartition under the rollback barrier, so
            // their quality is tolerance-exact everywhere. Asynchronous
            // quality depends on how long survivors free-ran against the
            // dead rank's frozen boundary: bounded-tolerance staleness on
            // the deterministic backends (modelled ~1 ms detection), the
            // documented asynchronous staleness bound on the wall-clock
            // ones (real ~30 ms missed-ping detection with microsecond
            // sweeps — the same 2e-2 bound the WAN staleness test uses).
            let bound = match (scheme, runtime) {
                (Scheme::Synchronous, _) => clean.tolerance * 2.0,
                (_, RuntimeKind::Loopback | RuntimeKind::Sim) => clean.tolerance * 10.0,
                _ => 2e-2,
            };
            assert!(
                m.residual < bound,
                "{scheme:?}/{runtime}: residual {}",
                m.residual
            );
        }
    }
}

/// Synchronous relaxation counts stay problem-determined through a
/// repartitioned recovery *and* a join: the re-slice restores every peer
/// onto one common global iterate (ghosts included) and the sweep sequence
/// of a synchronous run does not depend on the decomposition, so loopback,
/// sim and real-socket UDP agree on the convergence iteration even though
/// their capacity estimates (and hence their new partitions) differ.
#[test]
fn repartitioned_sync_run_keeps_cross_runtime_relaxation_agreement() {
    let peers = 3;
    let workload = WorkloadKind::Obstacle.build(9, peers);
    let clean = obstacle_config(Scheme::Synchronous, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    assert!(baseline.measurement.converged);
    let baseline_iters = baseline
        .measurement
        .relaxations_per_peer
        .iter()
        .min()
        .copied()
        .unwrap();
    let crash_at = crash_at_fraction(baseline_iters, 0.4);
    let join_at = crash_at_fraction(baseline_iters, 0.7);
    let mut faulty = clean.clone();
    faulty.churn = Some(
        ChurnPlan::kill(0, crash_at)
            .with_checkpoint_interval((crash_at / 2).max(1))
            .with_repartition(true)
            .with_join(1, join_at),
    );
    let counts: Vec<u64> = [RuntimeKind::Loopback, RuntimeKind::Sim, RuntimeKind::Udp]
        .into_iter()
        .map(|runtime| {
            let result = run_on(workload.as_ref(), &faulty, runtime);
            assert!(result.measurement.converged, "{runtime} did not converge");
            assert_eq!(result.measurement.joins, 1, "{runtime} joins");
            assert!(result.measurement.repartitions >= 1, "{runtime}");
            // The convergence iteration: the smallest final counter (the
            // detecting peer stops exactly there; others may overshoot by
            // the in-flight sweep).
            result
                .measurement
                .relaxations_per_peer
                .iter()
                .min()
                .copied()
                .unwrap()
        })
        .collect();
    assert_eq!(
        counts[0], counts[1],
        "loopback vs sim disagree on the repartitioned convergence iteration"
    );
    assert_eq!(
        counts[0], counts[2],
        "loopback vs udp disagree on the repartitioned convergence iteration"
    );
}

/// Join-mid-run over real sockets: the joiner binds a fresh UdpSocket,
/// registers with the bootstrap (which republishes the rank→port table to
/// the running peers), takes a share of the work and counts in the
/// measurement — the paper's "peers arrive while the application runs",
/// on a real network stack.
#[test]
fn join_mid_run_over_real_udp_sockets() {
    let peers = 2;
    let workload = WorkloadKind::Heat.build(12, peers);
    let mut clean = obstacle_config(Scheme::Asynchronous, peers);
    clean.tolerance = 1e-3;
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    assert!(baseline.measurement.converged);
    let join_at = crash_at_fraction(
        baseline
            .measurement
            .relaxations_per_peer
            .iter()
            .min()
            .copied()
            .unwrap(),
        0.4,
    );
    let mut faulty = clean.clone();
    faulty.churn = Some(
        ChurnPlan::new(vec![])
            .with_checkpoint_interval((join_at / 2).max(1))
            .with_join(0, join_at),
    );
    let result = run_on(workload.as_ref(), &faulty, RuntimeKind::Udp);
    let m = &result.measurement;
    assert!(m.converged, "udp join run did not converge");
    assert_eq!(m.crashes, 0);
    assert_eq!(m.joins, 1);
    assert_eq!(m.repartitions, 1);
    assert_eq!(m.peers, peers + 1);
    // The joiner really relaxed (its executed-points account is live).
    assert!(
        m.points_relaxed_per_peer[peers] > 0,
        "the joined rank did no work: {:?}",
        m.points_relaxed_per_peer
    );
    assert!(
        m.residual < clean.tolerance * 10.0,
        "residual {}",
        m.residual
    );
}

/// Live load accounting feeds real throughput estimates on every backend,
/// with or without churn.
#[test]
fn per_peer_throughput_estimates_are_live() {
    let peers = 2;
    let workload = WorkloadKind::Obstacle.build(8, peers);
    let config = obstacle_config(Scheme::Synchronous, peers);
    for runtime in [
        RuntimeKind::Loopback,
        RuntimeKind::Sim,
        RuntimeKind::Threads,
    ] {
        let result = run_on(workload.as_ref(), &config, runtime);
        assert_eq!(
            result.measurement.points_per_sec.len(),
            peers,
            "{runtime}: one throughput estimate per peer"
        );
        assert!(
            result.measurement.points_per_sec.iter().all(|&t| t > 0.0),
            "{runtime}: throughput estimates must be live, got {:?}",
            result.measurement.points_per_sec
        );
    }
}

/// The lock-free report cells agree with the locked-baseline detector
/// through the volatile paths too: a synchronous crash (checkpoint
/// restore and rollback broadcast) and a mid-run join (membership plan
/// and re-slice) produce identical convergence behaviour whether dirty
/// reports ride the cells or every report is forced through the mutex
/// (`force_locked`, the pre-cell semantics). Runs on the deterministic
/// loopback backend, so the comparison is exact.
#[test]
fn cell_and_locked_detectors_agree_through_rollback_and_join() {
    use p2pdc::runtime::report_cell::set_force_locked;

    let peers = 3;
    let workload = WorkloadKind::Obstacle.build(10, peers);
    let mut clean = obstacle_config(Scheme::Synchronous, peers);
    clean.tolerance = 1e-4;
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    assert!(baseline.measurement.converged);
    let baseline_iters = baseline
        .measurement
        .relaxations_per_peer
        .iter()
        .min()
        .copied()
        .unwrap();
    let crash_at = crash_at_fraction(baseline_iters, 0.3);
    let join_at = crash_at_fraction(baseline_iters, 0.6);
    let mut faulty = clean.clone();
    faulty.churn = Some(
        ChurnPlan::kill(1, crash_at)
            .with_checkpoint_interval((crash_at / 2).max(1))
            .with_repartition(true)
            .with_join(0, join_at)
            .with_detection_delay_ns(1_000_000),
    );
    let run = |forced: bool| {
        set_force_locked(forced);
        let result = run_on(workload.as_ref(), &faulty, RuntimeKind::Loopback);
        set_force_locked(false);
        result
    };
    let locked = run(true);
    let cells = run(false);
    for result in [&locked, &cells] {
        let m = &result.measurement;
        assert!(m.converged);
        assert_eq!((m.crashes, m.recoveries, m.joins), (1, 1, 1));
        assert!(m.rollbacks >= 1, "synchronous recovery must roll back");
    }
    assert_eq!(
        locked.measurement.relaxations_per_peer, cells.measurement.relaxations_per_peer,
        "locked and cell detectors diverged through rollback + join"
    );
    assert_eq!(locked.measurement.rollbacks, cells.measurement.rollbacks);
    assert_eq!(locked.measurement.residual, cells.measurement.residual);
}
