//! End-to-end tests of the peer-volatility subsystem: seeded crashes
//! injected into live runs on every backend, with checkpoint recovery,
//! scheme-correct semantics (asynchronous runs absorb the stale restart,
//! synchronous runs roll back) and cross-runtime agreement on the recovery
//! counts.

use p2pdc::{run_on, ChurnPlan, RunConfig, RuntimeKind, Scheme, WorkloadKind};

/// The crash point of the e2e scenarios: ~30% of the fault-free synchronous
/// convergence iteration of the obstacle workload at this size (measured
/// from a baseline run inside each test, so the tests do not hard-code
/// solver iteration counts).
fn crash_at_fraction(baseline_iterations: u64, fraction: f64) -> u64 {
    ((baseline_iterations as f64 * fraction) as u64).max(2)
}

fn obstacle_config(scheme: Scheme, peers: usize) -> RunConfig {
    RunConfig::quick(scheme, peers)
}

/// The same seeded crash produces identical recovery counts on the two
/// deterministic backends, and both faulty runs still converge to the same
/// residual quality as the fault-free baseline.
#[test]
fn loopback_and_sim_agree_on_recovery_counts_for_the_same_seeded_crash() {
    let peers = 4;
    let workload = WorkloadKind::Obstacle.build(10, peers);
    let clean = obstacle_config(Scheme::Asynchronous, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    assert!(baseline.measurement.converged);
    let crash_at = crash_at_fraction(
        baseline
            .measurement
            .relaxations_per_peer
            .iter()
            .min()
            .copied()
            .unwrap(),
        0.3,
    );

    let mut faulty = clean.clone();
    faulty.churn =
        Some(ChurnPlan::kill(1, crash_at).with_checkpoint_interval((crash_at / 2).max(1)));
    let loopback = run_on(workload.as_ref(), &faulty, RuntimeKind::Loopback);
    let sim = run_on(workload.as_ref(), &faulty, RuntimeKind::Sim);
    for (label, result) in [("loopback", &loopback), ("sim", &sim)] {
        assert!(result.measurement.converged, "{label} did not converge");
        assert_eq!(result.measurement.crashes, 1, "{label} crash count");
        assert!(
            result.measurement.residual < clean.tolerance * 10.0,
            "{label}: residual {} exceeds the async staleness bound",
            result.measurement.residual
        );
        assert!(result.measurement.downtime_s > 0.0, "{label} downtime");
    }
    assert_eq!(
        loopback.measurement.recoveries, sim.measurement.recoveries,
        "the deterministic backends disagree on recovery counts"
    );
    assert_eq!(loopback.measurement.rollbacks, sim.measurement.rollbacks);
}

/// An asynchronous obstacle run with one peer killed at ~30% progress meets
/// the same residual tolerance as the fault-free run, on all four backends —
/// the paper's headline fault-tolerance claim.
#[test]
fn async_obstacle_run_survives_a_mid_run_crash_on_every_backend() {
    let peers = 3;
    let workload = WorkloadKind::Obstacle.build(10, peers);
    let clean = obstacle_config(Scheme::Asynchronous, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    assert!(baseline.measurement.converged);
    let crash_at = crash_at_fraction(
        baseline
            .measurement
            .relaxations_per_peer
            .iter()
            .min()
            .copied()
            .unwrap(),
        0.3,
    );
    let mut faulty = clean.clone();
    faulty.churn =
        Some(ChurnPlan::kill(1, crash_at).with_checkpoint_interval((crash_at / 2).max(1)));
    for runtime in RuntimeKind::ALL {
        let result = run_on(workload.as_ref(), &faulty, runtime);
        assert!(result.measurement.converged, "{runtime} did not converge");
        assert_eq!(result.measurement.crashes, 1, "{runtime} crash count");
        assert_eq!(result.measurement.recoveries, 1, "{runtime} recoveries");
        assert_eq!(
            result.measurement.rollbacks, 0,
            "{runtime}: asynchronous runs absorb the restart without rollback"
        );
        assert!(
            result.measurement.residual < clean.tolerance * 10.0,
            "{runtime}: residual {} exceeds the fault-free quality bound",
            result.measurement.residual
        );
    }
}

/// A synchronous run cannot absorb a stale restart: the recovery provably
/// rolls every peer back to a common checkpointed iteration (rollback count
/// and redone work are both visible) and the run still converges to the
/// synchronous-quality residual.
#[test]
fn sync_obstacle_run_recovers_via_rollback() {
    // Three peers, victim at one end: the middle peer has an intact
    // synchronous edge to the far peer, so the rollback must realign the
    // FIFO on an edge the crash never touched (stale queued updates there
    // would silently shift every later boundary by one iteration).
    let peers = 3;
    let workload = WorkloadKind::Obstacle.build(9, peers);
    let clean = obstacle_config(Scheme::Synchronous, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    assert!(baseline.measurement.converged);
    let baseline_iters = baseline
        .measurement
        .relaxations_per_peer
        .iter()
        .min()
        .copied()
        .unwrap();
    let crash_at = crash_at_fraction(baseline_iters, 0.5);
    let checkpoint_interval = (crash_at / 2).max(1);
    let mut faulty = clean.clone();
    faulty.churn = Some(ChurnPlan::kill(0, crash_at).with_checkpoint_interval(checkpoint_interval));
    for runtime in [RuntimeKind::Loopback, RuntimeKind::Sim] {
        let result = run_on(workload.as_ref(), &faulty, runtime);
        assert!(result.measurement.converged, "{runtime} did not converge");
        assert_eq!(result.measurement.recoveries, 1, "{runtime} recoveries");
        assert_eq!(
            result.measurement.rollbacks, 1,
            "{runtime}: synchronous recovery must roll back"
        );
        assert!(
            result.measurement.residual < clean.tolerance * 2.0,
            "{runtime}: rollback must preserve synchronous quality, residual {}",
            result.measurement.residual
        );
        // The rollback redid work: the faulty run performs strictly more
        // relaxations than the fault-free one.
        let faulty_max = result
            .measurement
            .relaxations_per_peer
            .iter()
            .max()
            .unwrap();
        assert!(
            *faulty_max > baseline_iters,
            "{runtime}: {faulty_max} relaxations vs fault-free {baseline_iters}"
        );
    }
}

/// A hybrid run across two clusters absorbs a crash like an asynchronous
/// one: the recovery restores the victim without any rollback, the victim's
/// re-reported iterations must not fake iteration completeness (they are
/// first-report-only counted), and the run converges.
#[test]
fn hybrid_two_cluster_run_absorbs_a_crash_without_rollback() {
    let peers = 4;
    let workload = WorkloadKind::Obstacle.build(10, peers);
    let clean = RunConfig::quick_two_clusters(Scheme::Hybrid, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    assert!(baseline.measurement.converged);
    let crash_at = crash_at_fraction(
        baseline
            .measurement
            .relaxations_per_peer
            .iter()
            .min()
            .copied()
            .unwrap(),
        0.4,
    );
    let mut faulty = clean.clone();
    faulty.churn =
        Some(ChurnPlan::kill(2, crash_at).with_checkpoint_interval((crash_at / 2).max(1)));
    // Threads is the wall-clock case: an update lost with the dead peer's
    // inbox must come back through the reliable channel's real-time
    // retransmission, or the victim's intra-cluster edge would deadlock.
    for runtime in [
        RuntimeKind::Loopback,
        RuntimeKind::Sim,
        RuntimeKind::Threads,
    ] {
        let clean_result = run_on(workload.as_ref(), &clean, runtime);
        let result = run_on(workload.as_ref(), &faulty, runtime);
        assert!(result.measurement.converged, "{runtime} did not converge");
        assert_eq!(result.measurement.recoveries, 1, "{runtime} recoveries");
        assert_eq!(
            result.measurement.rollbacks, 0,
            "{runtime}: hybrid runs absorb the restart without rollback"
        );
        let bound = (clean_result.measurement.residual * 10.0).max(clean.tolerance * 10.0);
        assert!(
            result.measurement.residual < bound,
            "{runtime}: residual {} vs fault-free {}",
            result.measurement.residual,
            clean_result.measurement.residual
        );
    }
}

/// The same crash/rollback protocol over real UDP sockets: the victim's
/// socket genuinely dies, the bootstrap republishes its replacement port,
/// and the synchronous run converges through the rollback.
#[test]
fn sync_crash_over_real_udp_sockets_recovers_via_rollback() {
    let peers = 2;
    let workload = WorkloadKind::Obstacle.build(8, peers);
    let clean = obstacle_config(Scheme::Synchronous, peers);
    let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
    let crash_at = crash_at_fraction(
        baseline
            .measurement
            .relaxations_per_peer
            .iter()
            .min()
            .copied()
            .unwrap(),
        0.5,
    );
    let mut faulty = clean.clone();
    faulty.churn =
        Some(ChurnPlan::kill(1, crash_at).with_checkpoint_interval((crash_at / 2).max(1)));
    let result = run_on(workload.as_ref(), &faulty, RuntimeKind::Udp);
    assert!(
        result.measurement.converged,
        "udp churn run did not converge"
    );
    assert_eq!(result.measurement.crashes, 1);
    assert_eq!(result.measurement.recoveries, 1);
    assert_eq!(result.measurement.rollbacks, 1);
    assert!(result.measurement.residual < clean.tolerance * 2.0);
    // Real downtime: detection took at least the three missed ping periods.
    assert!(
        result.measurement.downtime_s >= 0.02,
        "downtime {}s is shorter than the missed-ping detection window",
        result.measurement.downtime_s
    );
}

/// The heat and PageRank workloads survive the same mid-run crash through
/// their checkpoint/restore hooks (asynchronous scheme, deterministic
/// backends).
#[test]
fn heat_and_pagerank_survive_crashes_through_their_restore_hooks() {
    for (kind, size, tolerance) in [
        (WorkloadKind::Heat, 12, 1e-3),
        (WorkloadKind::PageRank, 48, 1e-8),
    ] {
        let peers = 3;
        let workload = kind.build(size, peers);
        let mut clean = obstacle_config(Scheme::Asynchronous, peers);
        clean.tolerance = tolerance;
        let baseline = run_on(workload.as_ref(), &clean, RuntimeKind::Loopback);
        assert!(baseline.measurement.converged, "{kind} baseline");
        let crash_at = crash_at_fraction(
            baseline
                .measurement
                .relaxations_per_peer
                .iter()
                .min()
                .copied()
                .unwrap(),
            0.3,
        );
        let mut faulty = clean.clone();
        faulty.churn =
            Some(ChurnPlan::kill(2, crash_at).with_checkpoint_interval((crash_at / 2).max(1)));
        for runtime in [RuntimeKind::Loopback, RuntimeKind::Sim] {
            // "Same residual tolerance as fault-free": the bound is the
            // fault-free asynchronous run on the *same* backend (whose own
            // staleness floor depends on the backend's latency model).
            let clean_result = run_on(workload.as_ref(), &clean, runtime);
            let bound = (clean_result.measurement.residual * 10.0).max(tolerance * 10.0);
            let result = run_on(workload.as_ref(), &faulty, runtime);
            assert!(result.measurement.converged, "{kind}/{runtime}");
            assert_eq!(result.measurement.recoveries, 1, "{kind}/{runtime}");
            assert!(
                result.measurement.residual < bound,
                "{kind}/{runtime}: residual {} vs fault-free {}",
                result.measurement.residual,
                clean_result.measurement.residual
            );
        }
    }
}

/// Live load accounting feeds real throughput estimates on every backend,
/// with or without churn.
#[test]
fn per_peer_throughput_estimates_are_live() {
    let peers = 2;
    let workload = WorkloadKind::Obstacle.build(8, peers);
    let config = obstacle_config(Scheme::Synchronous, peers);
    for runtime in [
        RuntimeKind::Loopback,
        RuntimeKind::Sim,
        RuntimeKind::Threads,
    ] {
        let result = run_on(workload.as_ref(), &config, runtime);
        assert_eq!(
            result.measurement.points_per_sec.len(),
            peers,
            "{runtime}: one throughput estimate per peer"
        );
        assert!(
            result.measurement.points_per_sec.iter().all(|&t| t > 0.0),
            "{runtime}: throughput estimates must be live, got {:?}",
            result.measurement.points_per_sec
        );
    }
}
