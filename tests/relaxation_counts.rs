//! Integration test of the paper's relaxation-count claims (Figures 5 and 6):
//! the synchronous scheme performs the same number of relaxations regardless
//! of the number of peers, while the asynchronous scheme performs more as the
//! peer count grows.

use p2pdc::{run_obstacle_experiment, ObstacleExperiment, Scheme};

const N: usize = 12;

fn run(scheme: Scheme, peers: usize, clusters: usize) -> p2pdc::RunMeasurement {
    run_obstacle_experiment(&ObstacleExperiment::new(N, scheme, peers, clusters)).measurement
}

#[test]
fn synchronous_relaxation_count_is_independent_of_the_peer_count() {
    let reference = run(Scheme::Synchronous, 1, 1);
    assert!(reference.converged);
    let expected = reference.relaxations_per_peer[0];
    for peers in [2usize, 3, 4, 6] {
        let m = run(Scheme::Synchronous, peers, 1);
        assert!(m.converged, "{peers} peers did not converge");
        // Every peer performs the same count as the sequential solver (+1 for
        // the sweep that may start before the stop signal propagates).
        for (rank, &count) in m.relaxations_per_peer.iter().enumerate() {
            assert!(
                count >= expected && count <= expected + 1,
                "peer {rank}/{peers}: {count} relaxations vs sequential {expected}"
            );
        }
    }
}

#[test]
fn asynchronous_relaxation_count_grows_with_the_peer_count() {
    let few = run(Scheme::Asynchronous, 2, 1);
    let many = run(Scheme::Asynchronous, 6, 1);
    assert!(few.converged && many.converged);
    assert!(
        many.avg_relaxations() > few.avg_relaxations(),
        "average relaxations should grow with peers: {} (6 peers) vs {} (2 peers)",
        many.avg_relaxations(),
        few.avg_relaxations()
    );
    // And asynchronous always relaxes at least as much as synchronous.
    let sync = run(Scheme::Synchronous, 6, 1);
    assert!(many.avg_relaxations() >= sync.avg_relaxations());
}

#[test]
fn all_schemes_produce_valid_obstacle_solutions() {
    let problem = obstacle::ObstacleProblem::membrane(N);
    for scheme in [Scheme::Synchronous, Scheme::Asynchronous, Scheme::Hybrid] {
        let result = run_obstacle_experiment(&ObstacleExperiment::new(N, scheme, 4, 1));
        assert!(result.measurement.converged, "{scheme} did not converge");
        // Feasibility of the assembled solution.
        for (u, psi) in result.solution.iter().zip(problem.psi.iter()) {
            assert!(*u >= *psi - 1e-9, "{scheme} produced an infeasible point");
        }
    }
}
