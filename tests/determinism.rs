//! Determinism regression test: two simulated runs with the same
//! `RunConfig::seed` must produce byte-identical `RunMeasurement`s (and
//! identical per-peer results). This guards the PeerEngine refactor and any
//! future parallel backend against nondeterminism creeping into the
//! virtual-time substrate — the property every evaluation figure rests on.

use p2pdc::{run_obstacle_experiment, ObstacleExperiment, Scheme};

fn serialized_run(exp: &ObstacleExperiment) -> (String, Vec<(usize, Vec<u8>)>) {
    let result = run_obstacle_experiment(exp);
    let measurement = serde_json::to_string(&result.measurement).expect("measurement serializes");
    let results = result
        .solution
        .iter()
        .enumerate()
        .map(|(i, v)| (i, v.to_le_bytes().to_vec()))
        .collect();
    (measurement, results)
}

#[test]
fn same_seed_same_measurement_bytes() {
    // Two clusters + asynchronous scheme exercises every source of
    // randomness in the substrate: netem jitter, per-link loss draws and the
    // asynchronous termination detection.
    let exp = ObstacleExperiment::new(10, Scheme::Asynchronous, 4, 2);
    let (first_measurement, first_solution) = serialized_run(&exp);
    let (second_measurement, second_solution) = serialized_run(&exp);
    assert_eq!(
        first_measurement, second_measurement,
        "same seed must serialize to identical measurement bytes"
    );
    assert_eq!(
        first_solution, second_solution,
        "solutions must match bit-for-bit"
    );
}

#[test]
fn different_seeds_still_converge() {
    // The NICTA topologies are deterministic (no loss, no jitter), so the
    // seed may not change the trajectory — but any seed must converge.
    let mut exp = ObstacleExperiment::new(10, Scheme::Asynchronous, 4, 2);
    let first = run_obstacle_experiment(&exp);
    exp.seed = 43;
    let second = run_obstacle_experiment(&exp);
    assert!(first.measurement.converged && second.measurement.converged);
}

#[test]
fn synchronous_runs_are_also_deterministic() {
    let exp = ObstacleExperiment::new(8, Scheme::Synchronous, 3, 1);
    let (first, _) = serialized_run(&exp);
    let (second, _) = serialized_run(&exp);
    assert_eq!(first, second);
}
