//! Integration test of the P2PDC environment: user daemon commands, topology
//! manager, task manager and the obstacle application working together.

use desim::{SimDuration, SimTime};
use netsim::{ClusterId, NodeId};
use p2pdc::{
    parse_command, Command, JobState, ObstacleApp, ObstacleInstance, ObstacleParams, Scheme,
    TaskManager, TopologyManager,
};
use std::sync::Arc;

fn environment(peers: usize) -> (TopologyManager, TaskManager) {
    let mut topology = TopologyManager::new(SimDuration::from_secs(1));
    for i in 0..peers {
        topology.register(NodeId(i), ClusterId(i % 2), 1.0, SimTime::ZERO);
    }
    let mut tm = TaskManager::new();
    tm.register_application(Arc::new(ObstacleApp::new(ObstacleParams {
        n: 8,
        peers: 2,
        scheme: Scheme::Synchronous,
        instance: ObstacleInstance::Membrane,
    })));
    (topology, tm)
}

#[test]
fn full_job_lifecycle_via_user_daemon_commands() {
    let (mut topology, mut tm) = environment(4);

    // run command with overrides, as the paper allows at start time.
    let cmd = parse_command(r#"run obstacle {"peers": 3, "scheme": "asynchronous"}"#).unwrap();
    let Command::Run { app, params } = cmd else {
        panic!("expected run")
    };
    let job = tm.submit(&app, &params, &mut topology);
    assert_eq!(tm.job(job).state, JobState::Running);
    assert_eq!(tm.job(job).definition.peers_needed, 3);
    assert_eq!(tm.job(job).definition.scheme, Scheme::Asynchronous);
    assert_eq!(topology.free_count(), 1);

    // Execute the three sub-tasks (task-execution component).
    let application = tm.application("obstacle").unwrap();
    let definition = tm.job(job).definition.clone();
    for rank in 0..3 {
        let mut task = application.calculate(&definition, rank);
        for _ in 0..5 {
            task.relax();
        }
        tm.submit_result(job, rank, task.result());
    }
    assert_eq!(tm.job(job).state, JobState::Completed);
    let output = tm.job(job).output.as_ref().expect("aggregated output");
    assert_eq!(output.len(), 8 * 8 * 8 * 8, "full grid of f64 values");

    tm.release(job, &mut topology);
    assert_eq!(topology.free_count(), 4);
}

#[test]
fn stat_and_exit_commands_parse_and_peer_eviction_works() {
    assert_eq!(parse_command("stat").unwrap(), Command::Stat);
    assert_eq!(parse_command("exit").unwrap(), Command::Exit);

    let (mut topology, _) = environment(2);
    // Peer 1 keeps pinging, peer 0 goes silent and is evicted after 3 periods.
    topology.ping(NodeId(1), SimTime::from_secs_f64(3.2));
    let evicted = topology.evict_stale(SimTime::from_secs_f64(3.5));
    assert_eq!(evicted, vec![NodeId(0)]);
    assert_eq!(topology.peer_count(), 1);
}

#[test]
fn submission_is_rejected_without_enough_free_peers() {
    let (mut topology, mut tm) = environment(1);
    let job = tm.submit("obstacle", &serde_json::json!({"peers": 2}), &mut topology);
    assert!(matches!(tm.job(job).state, JobState::Rejected(_)));
    // The failed submission must not leak peer allocations.
    assert_eq!(topology.free_count(), 1);
}
