//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored [`serde::Value`] data model as JSON text and parses
//! JSON text back, covering the API subset this workspace uses: [`json!`],
//! [`Value`], [`to_vec`], [`to_string`], [`to_string_pretty`] and
//! [`from_str`]. Non-finite floats serialize as `null`, like upstream.

use std::fmt;

pub use serde::Value;

/// Error for JSON parsing or conversion failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Convert any serializable value into a [`Value`] (used by [`json!`]).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---- writer --------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // Keep integral floats distinguishable from integers.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&format!("{v}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

/// Build a [`Value`] from JSON-like syntax. Object values and array elements
/// may be arbitrary expressions implementing `Serialize`; keys must be string
/// literals (the only form this workspace uses).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $element:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$element) ),* ])
    };
    ({}) => { $crate::Value::Map(Vec::new()) };
    ({ $( $key:literal : $value:expr ),+ $(,)? }) => {
        $crate::Value::Map(vec![
            $( (String::from($key), $crate::to_value(&$value)) ),+
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_maps() {
        let v = json!({"a": 1, "b": "x", "c": [1, 2]});
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Value::as_array).map(Vec::len), Some(2));
        assert_eq!(json!({}), Value::Map(vec![]));
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({"peers": 3, "scheme": "asynchronous", "f": 1.5, "neg": -2, "flag": true});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let text = to_string_pretty(&json!({"a": [1]})).unwrap();
        assert!(text.contains("\n  \"a\""));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{invalid").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("true garbage").is_err());
    }
}
