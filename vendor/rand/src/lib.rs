//! Offline stand-in for the `rand` crate.
//!
//! Provides only the [`RngCore`] and [`SeedableRng`] traits used by this
//! workspace. The concrete deterministic generator lives in the vendored
//! `rand_chacha` crate.

/// A source of random `u32`/`u64` values and bytes.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by spreading it across the seed bytes with a
    /// SplitMix64 sequence (deterministic, like upstream's default).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}
