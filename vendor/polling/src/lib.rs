//! Offline stand-in for the `polling` crate: the portable readiness-polling
//! API subset this workspace uses (the container has no network access to
//! crates.io, so external dependencies are vendored — see the workspace
//! `Cargo.toml`).
//!
//! A [`Poller`] watches a set of file descriptors for *read* readiness,
//! level-triggered: [`Poller::wait`] returns the keys of every registered
//! source with pending input, or an empty set on timeout. On Linux it is a
//! thin wrapper over `epoll(7)` (raw syscall bindings, no `libc` crate); on
//! other platforms a portable fallback reports every registered source as
//! ready after a short sleep, degrading to the same busy-poll the blocking
//! backends use — callers drain nonblocking sockets until `WouldBlock`
//! either way, so correctness does not depend on the backend.
//!
//! Only the subset the reactor runtime needs is provided: read interest,
//! level-triggered, `usize` keys, one poller per event loop (no cross-thread
//! waking — the reactor's loops each own their poller and never block longer
//! than their next timer deadline).

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// A single readiness event: the `key` the source was registered under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Registration key of the ready source.
    pub key: usize,
}

/// Reusable buffer of events filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    events: Vec<Event>,
}

impl Events {
    /// An empty event buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterate over the events of the last [`Poller::wait`] call.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.events.iter().copied()
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the last wait delivered no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clear the buffer (done automatically by [`Poller::wait`]).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// A readiness poller over registered file descriptors (read interest,
/// level-triggered).
#[derive(Debug)]
pub struct Poller {
    backend: imp::Backend,
}

impl Poller {
    /// Create a new poller.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            backend: imp::Backend::new()?,
        })
    }

    /// Register `source` for read readiness under `key`. The caller must
    /// keep the source alive (and nonblocking) while registered, and
    /// [`delete`](Self::delete) it before closing the descriptor.
    pub fn add(&self, source: &impl AsRawFd, key: usize) -> io::Result<()> {
        self.backend.add(source.as_raw_fd(), key)
    }

    /// Remove a previously registered source.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.backend.delete(source.as_raw_fd())
    }

    /// Wait until at least one registered source is readable or `timeout`
    /// expires (`None` blocks indefinitely). Fills `events` (cleared first)
    /// and returns the number of ready sources. A zero timeout performs a
    /// nonblocking readiness check.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.backend.wait(&mut events.events, timeout)
    }
}

#[cfg(target_os = "linux")]
mod imp {
    //! `epoll(7)` backend. The bindings are declared here directly — std
    //! already links the platform C library, so no `libc` crate is needed.

    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    /// Upper bound on events drained per wait; level-triggered epoll
    /// re-reports anything left over on the next call.
    const MAX_EVENTS: usize = 1024;

    /// Matches the kernel's `struct epoll_event` layout on every
    /// architecture Rust's `std` supports Linux on (packed on x86-64).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    #[derive(Debug)]
    pub(super) struct Backend {
        epfd: RawFd,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd })
        }

        pub(super) fn add(&self, fd: RawFd, key: usize) -> io::Result<()> {
            let mut event = EpollEvent {
                events: EPOLLIN,
                data: key as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            // The event argument is ignored for DEL but must be non-null on
            // pre-2.6.9 kernels; pass a dummy for compatibility.
            let mut event = EpollEvent { events: 0, data: 0 };
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(t) if t.is_zero() => 0,
                // Round up so a sub-millisecond timeout still sleeps instead
                // of spinning.
                Some(t) => t.as_millis().max(1).min(i32::MAX as u128) as i32,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n = loop {
                let rc = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms)
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for event in &buf[..n] {
                out.push(Event {
                    key: event.data as usize,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! Portable fallback: report every registered source as ready after a
    //! short sleep. Callers drain nonblocking sockets until `WouldBlock`, so
    //! this degrades to a paced busy-poll rather than changing semantics.

    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[derive(Debug)]
    pub(super) struct Backend {
        registered: Mutex<Vec<(RawFd, usize)>>,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Self> {
            Ok(Self {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub(super) fn add(&self, fd: RawFd, key: usize) -> io::Result<()> {
            let mut registered = self.registered.lock().unwrap();
            if registered.iter().any(|&(f, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            registered.push((fd, key));
            Ok(())
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut registered = self.registered.lock().unwrap();
            let before = registered.len();
            registered.retain(|&(f, _)| f != fd);
            if registered.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let pace = Duration::from_millis(1);
            let sleep = timeout.map_or(pace, |t| t.min(pace));
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
            let registered = self.registered.lock().unwrap();
            for &(_, key) in registered.iter() {
                out.push(Event { key });
            }
            Ok(out.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;

    fn socket_pair() -> (UdpSocket, UdpSocket) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn timeout_without_traffic_reports_nothing_on_linux() {
        let poller = Poller::new().unwrap();
        let (a, _b) = socket_pair();
        poller.add(&a, 7).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        // The epoll backend reports nothing; the portable fallback reports
        // the registered key (callers then read WouldBlock). Either way no
        // foreign keys appear.
        assert!(events.iter().all(|e| e.key == 7), "foreign key reported");
        assert_eq!(n, events.len());
        poller.delete(&a).unwrap();
    }

    #[test]
    fn readable_socket_is_reported_under_its_key() {
        let poller = Poller::new().unwrap();
        let (a, b) = socket_pair();
        poller.add(&a, 42).unwrap();
        b.send_to(b"ping", a.local_addr().unwrap()).unwrap();
        let mut events = Events::new();
        let mut seen = false;
        // Give the loopback path a few sweeps to deliver.
        for _ in 0..100 {
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            if events.iter().any(|e| e.key == 42) {
                seen = true;
                break;
            }
        }
        assert!(seen, "datagram never reported as readable");
        let mut buf = [0u8; 16];
        let (len, _) = a.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..len], b"ping");
        poller.delete(&a).unwrap();
    }

    #[test]
    fn level_triggered_readiness_persists_until_drained() {
        let poller = Poller::new().unwrap();
        let (a, b) = socket_pair();
        poller.add(&a, 3).unwrap();
        b.send_to(b"x", a.local_addr().unwrap()).unwrap();
        let mut events = Events::new();
        // Wait until the datagram is visible, then poll again WITHOUT
        // reading: level-triggered readiness must be re-reported.
        for _ in 0..100 {
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            if !events.is_empty() {
                break;
            }
        }
        assert!(!events.is_empty(), "datagram never became readable");
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.key == 3),
            "readiness not re-reported before the socket was drained"
        );
        poller.delete(&a).unwrap();
    }

    #[test]
    fn deleted_sources_are_not_reported() {
        let poller = Poller::new().unwrap();
        let (a, b) = socket_pair();
        poller.add(&a, 1).unwrap();
        poller.delete(&a).unwrap();
        b.send_to(b"x", a.local_addr().unwrap()).unwrap();
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty(), "deleted source still reported");
    }

    #[test]
    fn many_sockets_multiplex_under_distinct_keys() {
        let poller = Poller::new().unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sockets: Vec<UdpSocket> = (0..32)
            .map(|i| {
                let s = UdpSocket::bind("127.0.0.1:0").unwrap();
                s.set_nonblocking(true).unwrap();
                poller.add(&s, i).unwrap();
                s
            })
            .collect();
        for target in [4usize, 17, 31] {
            sender
                .send_to(b"hit", sockets[target].local_addr().unwrap())
                .unwrap();
        }
        let mut hit = std::collections::HashSet::new();
        let mut events = Events::new();
        for _ in 0..200 {
            poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .unwrap();
            for event in events.iter() {
                let mut buf = [0u8; 8];
                // Drain so level-triggered readiness stops re-reporting.
                while sockets[event.key].recv_from(&mut buf).is_ok() {
                    hit.insert(event.key);
                }
            }
            if hit.len() == 3 {
                break;
            }
        }
        assert_eq!(
            hit,
            [4usize, 17, 31].into_iter().collect(),
            "readiness keys must identify exactly the targeted sockets"
        );
        for s in &sockets {
            poller.delete(s).unwrap();
        }
    }
}
