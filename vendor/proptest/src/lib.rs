//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `name in strategy` arguments, integer and float
//! range strategies, [`any`], [`Just`], [`prop_oneof!`],
//! `proptest::collection::vec`, and the `prop_assert*` macros. Each property
//! runs a fixed number of deterministically seeded cases (no shrinking);
//! failures panic like ordinary test assertions.

use std::ops::Range;

/// Deterministic case-generation RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction; each test derives its seed from the case index.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Marker strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy generating arbitrary values of `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<u8> {
    type Value = u8;
    fn sample(&self, rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the candidate strategies.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a half-open range or an exact size.
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                start: exact,
                end: exact + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Number of cases each property runs.
pub const CASES: u64 = 32;

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy};
}

/// Define property tests: each `name in strategy` argument is sampled per
/// case and the body runs [`CASES`] times with deterministic seeds.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let mut seed: u64 = 0;
            for byte in stringify!($name).bytes() {
                seed = seed.wrapping_mul(257).wrapping_add(byte as u64);
            }
            for case in 0..$crate::CASES {
                let mut rng = $crate::TestRng::new(seed.wrapping_add(case));
                $(
                    let $arg = $crate::Strategy::sample(&$strategy, &mut rng);
                )*
                $body
            }
        }
    )*};
}

/// Assert inside a property (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniformly choose among several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>> ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vectors_obey_length(v in collection::vec(0u8..10, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for item in v {
                prop_assert!(item < 10);
            }
        }

        #[test]
        fn oneof_only_yields_candidates(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1u8 || x == 2u8);
        }
    }
}
