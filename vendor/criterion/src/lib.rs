//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset this workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros — with
//! a simple mean-of-a-few-iterations timer instead of upstream's full
//! statistical machinery. Good enough to spot gross regressions and to keep
//! `cargo bench` runnable offline.

use std::fmt;
use std::time::Instant;

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Throughput annotation (recorded, reported per element/byte).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iterations: u32,
    last_mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up pass, then the timed passes.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.iterations as f64;
    }
}

fn report(group: Option<&str>, id: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut line = format!("bench {label:<50} {:>14.1} ns/iter", mean_ns);
    match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            line.push_str(&format!(
                "  ({:.1} Melem/s)",
                n as f64 / mean_ns * 1e9 / 1e6
            ));
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            line.push_str(&format!(
                "  ({:.1} MiB/s)",
                n as f64 / mean_ns * 1e9 / 1048576.0
            ));
        }
        _ => {}
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API compatibility; the stub runs a
    /// fixed small number of iterations).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a routine parameterized by an input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut routine = routine;
        let mut bencher = Bencher {
            iterations: 3,
            last_mean_ns: 0.0,
        };
        routine(&mut bencher, input);
        report(
            Some(&self.name),
            &id.name,
            bencher.last_mean_ns,
            self.throughput,
        );
        self
    }

    /// Finish the group.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function(&mut self, id: &str, routine: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut routine = routine;
        let mut bencher = Bencher {
            iterations: 3,
            last_mean_ns: 0.0,
        };
        routine(&mut bencher);
        report(None, id, bencher.last_mean_ns, None);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
