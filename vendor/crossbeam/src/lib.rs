//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the `crossbeam::channel` subset this workspace uses: an
//! unbounded MPMC channel with cloneable senders *and* receivers,
//! `try_recv`, blocking `recv` and `recv_timeout`, and disconnection
//! detection when all peers of one side have been dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        available: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The message could not be sent because the channel is disconnected.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            // Like upstream: the payload may not be Debug.
            write!(f, "SendError(..)")
        }
    }

    /// The channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Outcome of a bounded-wait receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }
    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }
    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "channel empty or disconnected")
        }
    }
    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "channel timed out or disconnected")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message. Fails only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.chan.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.chan.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().unwrap();
            match state.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.available.wait(state).unwrap();
            }
        }

        /// Receive, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .chan
                    .available
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = guard;
                if result.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_and_receive_across_threads() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let handle = std::thread::spawn(move || rx2.recv().unwrap());
            tx.send(41u64).unwrap();
            assert_eq!(handle.join().unwrap(), 41);
            tx.send(42u64).unwrap();
            assert_eq!(rx.try_recv(), Ok(42));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnection_is_observed() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx2, rx2) = unbounded::<u8>();
            drop(rx2);
            assert_eq!(tx2.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }
    }
}
