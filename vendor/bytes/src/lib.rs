//! Offline stand-in for the `bytes` crate.
//!
//! The container has no network access to crates.io, so the workspace vendors
//! the small API subset it actually uses: [`Bytes`] (a cheaply cloneable,
//! sliceable, reference-counted byte buffer), [`BytesMut`], and the [`Buf`] /
//! [`BufMut`] cursor traits with the big-endian integer accessors the wire
//! codecs rely on. Semantics match the upstream crate for this subset.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte slice (copies once into shared storage; upstream is
    /// zero-copy here, but the observable behaviour is identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-slice sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Try to take the underlying storage back without copying.
    ///
    /// Succeeds only when this handle is the sole owner of the storage and
    /// spans it fully (not a slice), returning the original `Vec<u8>`;
    /// otherwise the unchanged `Bytes` comes back as the error. Buffer pools
    /// use this to recycle a send buffer once the wire no longer holds a
    /// reference. (Upstream `bytes` exposes the same idea as
    /// `try_into_mut`.)
    pub fn try_reclaim(self) -> Result<Vec<u8>, Self> {
        if self.start != 0 || self.end != self.data.len() {
            return Err(self);
        }
        let Self { data, start, end } = self;
        Arc::try_unwrap(data).map_err(|data| Self { data, start, end })
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from(s.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable, mutable byte buffer convertible into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte buffer. Integer accessors are big-endian, like the
/// upstream crate.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Write cursor over a growable byte buffer. Integer writers are big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(rest.as_ref(), &[3, 4, 5]);
    }

    #[test]
    fn try_reclaim_requires_sole_full_range_ownership() {
        // Sole owner, full range: reclaims the original storage.
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.try_reclaim().unwrap(), vec![1, 2, 3]);
        // A live clone blocks reclamation.
        let b = Bytes::from(vec![4u8, 5]);
        let clone = b.clone();
        let b = b.try_reclaim().unwrap_err();
        drop(clone);
        // Sole again: now it succeeds.
        assert_eq!(b.try_reclaim().unwrap(), vec![4, 5]);
        // A strict slice never reclaims, even when solely owned.
        let s = Bytes::from(vec![6u8, 7, 8]).slice(1..);
        let s = s.try_reclaim().unwrap_err();
        assert_eq!(s.as_ref(), &[7, 8]);
    }

    #[test]
    fn big_endian_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert!(b.is_empty());
    }
}
