//! Offline stand-in for the `rand_chacha` crate: [`ChaCha8Rng`], a genuine
//! ChaCha stream cipher with 8 rounds used as a deterministic RNG. Output
//! need not be bit-compatible with upstream (the workspace only relies on
//! determinism and stream independence), but the generator is the real
//! algorithm, seeded from 32 bytes.

use rand::{RngCore, SeedableRng};

/// Deterministic ChaCha RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher state input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        // counter = 0, nonce = 0.
        Self {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.block[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::from_seed([7u8; 32]);
        let mut b = ChaCha8Rng::from_seed([7u8; 32]);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::from_seed([8u8; 32]);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn seed_from_u64_works() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
