//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the item
//! shapes this workspace uses — named structs, tuple structs, unit structs,
//! and enums whose variants are unit, tuple, or named — without `syn` or
//! `quote`: the derive input is parsed directly from the token stream and
//! the impl is emitted as source text. Generic items are not supported (the
//! workspace derives none).
//!
//! Representation conventions match upstream serde's JSON behaviour for
//! these shapes: structs serialize as maps keyed by field name, one-field
//! tuple structs (newtypes) are transparent, longer tuple structs are
//! arrays, unit enum variants are strings, and data-carrying variants are
//! single-entry maps keyed by the variant name. The only field attribute
//! honoured is `#[serde(default)]`: a missing map entry deserializes to
//! `Default::default()` instead of erroring.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// `#[serde(default)]`: a missing map entry deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skip any leading `#[...]` attribute pairs starting at `i`.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(i) {
        if ident.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past a type (or any token run) up to the next top-level comma,
/// tracking `<...>` nesting. Returns the index of the comma (or end).
fn skip_to_top_level_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Whether an attribute body (the `[...]` group) is `serde(default)` (or a
/// `serde(...)` list containing `default`).
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

/// Parse the fields of a named-fields group (`{ a: T, pub b: U }`),
/// honouring per-field `#[serde(default)]` markers.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        while i + 1 < tokens.len() {
            match (&tokens[i], &tokens[i + 1]) {
                (TokenTree::Punct(p), TokenTree::Group(g))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    default |= attr_is_serde_default(g);
                    i += 2;
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        i = skip_visibility(&tokens, i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive stub: expected field name, found {:?}",
                tokens[i]
            );
        };
        fields.push(Field {
            name: name.to_string(),
            default,
        });
        i += 1; // field name
        i += 1; // ':'
        i = skip_to_top_level_comma(&tokens, i);
        i += 1; // ','
    }
    fields
}

/// Count the fields of a tuple group (`( T, U )`).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_to_top_level_comma(&tokens, i);
        i += 1;
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive stub: expected variant name, found {:?}",
                tokens[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip a possible discriminant, then the trailing comma.
        i = skip_to_top_level_comma(&tokens, i);
        i += 1;
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);
    let TokenTree::Ident(keyword) = &tokens[i] else {
        panic!("serde_derive stub: expected `struct` or `enum`");
    };
    let keyword = keyword.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive stub: expected item name");
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic items are not supported (item `{name}`)");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g)))
            }
            _ => Shape::Struct(Fields::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde_derive stub: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

// ---- Serialize -----------------------------------------------------------

fn serialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let mut body = String::from("let mut entries = Vec::new();\n");
            for f in fields {
                let f = &f.name;
                body.push_str(&format!(
                    "entries.push((String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            body.push_str("::serde::Value::Map(entries)");
            body
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), {inner})]),\n",
                            binds = binders.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inner = String::from("{ let mut entries = Vec::new();\n");
                        for f in fields {
                            let f = &f.name;
                            inner.push_str(&format!(
                                "entries.push((String::from(\"{f}\"), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        inner.push_str("::serde::Value::Map(entries) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(String::from(\"{vn}\"), {inner})]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    }
}

/// Derive `Serialize` (Value-based stub semantics).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = serialize_body(&item);
    let name = &item.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Serialize impl parses")
}

// ---- Deserialize ---------------------------------------------------------

/// Expression deserializing field `field` of a map held in `source`.
fn named_field_expr(field: &Field, source: &str) -> String {
    let name = &field.name;
    if field.default {
        // `#[serde(default)]`: a missing entry takes the type's default.
        return format!(
            "match {source}.get(\"{name}\") {{\n\
                 Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                 None => ::core::default::Default::default(),\n\
             }}"
        );
    }
    format!(
        "match {source}.get(\"{name}\") {{\n\
             Some(v) => ::serde::Deserialize::from_value(v)?,\n\
             // Missing fields deserialize from null so Option<T> defaults to\n\
             // None (other types report the missing field).\n\
             None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                 .map_err(|e| ::serde::DeError(format!(\"field `{name}`: {{e}}\")))?,\n\
         }}"
    )
}

fn deserialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, named_field_expr(f, "value")))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(",\n"))
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let mut body = format!(
                "let items = value.as_array().ok_or_else(|| ::serde::__unexpected(\"an array of {n} elements\", value))?;\n\
                 if items.len() != {n} {{ return Err(::serde::__unexpected(\"an array of {n} elements\", value)); }}\n"
            );
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            body.push_str(&format!("Ok({name}({}))", inits.join(", ")));
            body
        }
        Shape::Struct(Fields::Unit) => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut body = String::new();
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),", vn = v.name))
                .collect();
            if !unit_arms.is_empty() {
                body.push_str(&format!(
                    "if let Some(s) = value.as_str() {{ match s {{ {} _ => {{}} }} }}\n",
                    unit_arms.join("\n")
                ));
            }
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => body.push_str(&format!(
                        "if let Some(inner) = value.get(\"{vn}\") {{\n\
                             return Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?));\n\
                         }}\n"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        body.push_str(&format!(
                            "if let Some(inner) = value.get(\"{vn}\") {{\n\
                                 let items = inner.as_array().ok_or_else(|| ::serde::__unexpected(\"an array of {n} elements\", inner))?;\n\
                                 if items.len() != {n} {{ return Err(::serde::__unexpected(\"an array of {n} elements\", inner)); }}\n\
                                 return Ok({name}::{vn}({}));\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: {}", f.name, named_field_expr(f, "inner")))
                            .collect();
                        body.push_str(&format!(
                            "if let Some(inner) = value.get(\"{vn}\") {{\n\
                                 return Ok({name}::{vn} {{ {} }});\n\
                             }}\n",
                            inits.join(",\n")
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "Err(::serde::__unexpected(\"a variant of enum {name}\", value))"
            ));
            body
        }
    }
}

/// Derive `Deserialize` (Value-based stub semantics).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = deserialize_body(&item);
    let name = &item.name;
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Deserialize impl parses")
}
