//! Offline stand-in for the `serde` crate.
//!
//! The container cannot fetch crates.io dependencies, so the workspace ships
//! a small self-describing serialization framework under the familiar names:
//! [`Serialize`] / [`Deserialize`] traits (plus their derive macros from the
//! vendored `serde_derive`), all passing through the JSON-like [`Value`]
//! data model. The vendored `serde_json` crate renders and parses [`Value`]
//! as real JSON text.
//!
//! The derive follows upstream serde's JSON conventions for the shapes this
//! workspace uses: structs become maps, newtype structs are transparent,
//! unit enum variants become strings, and data-carrying variants become
//! single-entry maps.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The self-describing data model every serializable type passes through.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Map(a), Value::Map(b)) => a == b,
            // Numbers compare by numeric value regardless of representation,
            // like upstream serde_json.
            (Value::I64(a), Value::I64(b)) => a == b,
            (Value::U64(a), Value::U64(b)) => a == b,
            (Value::F64(a), Value::F64(b)) => a == b,
            (Value::I64(a), Value::U64(b)) | (Value::U64(b), Value::I64(a)) => {
                *a >= 0 && *a as u64 == *b
            }
            (Value::F64(a), Value::I64(b)) | (Value::I64(b), Value::F64(a)) => *a == *b as f64,
            (Value::F64(a), Value::U64(b)) | (Value::U64(b), Value::F64(a)) => *a == *b as f64,
            _ => false,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Construct an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---- helpers used by derive-generated code ------------------------------

/// Fetch a required struct field from a map value (derive helper).
pub fn __field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    value
        .get(name)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// Type-mismatch error (derive helper).
pub fn __unexpected(expected: &str, value: &Value) -> DeError {
    DeError(format!("expected {expected}, found {value:?}"))
}

// ---- primitive impls -----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| __unexpected("an unsigned integer", value))?;
                <$t>::try_from(raw).map_err(|_| DeError(format!("{raw} out of range")))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| __unexpected("an integer", value))?;
                <$t>::try_from(raw).map_err(|_| DeError(format!("{raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        // JSON has no NaN literal; serde_json round-trips it as null.
        if value.is_null() {
            return Ok(f64::NAN);
        }
        value
            .as_f64()
            .ok_or_else(|| __unexpected("a number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| __unexpected("a boolean", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| __unexpected("a string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| __unexpected("an array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| __unexpected("a 2-element array", value))?;
        if items.len() != 2 {
            return Err(__unexpected("a 2-element array", value));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // String keys render as a JSON object; anything else as entry pairs.
        let mut entries = Vec::with_capacity(self.len());
        let mut all_strings = true;
        for (k, v) in self {
            match k.to_value() {
                Value::Str(s) => entries.push((s, v.to_value())),
                other => {
                    all_strings = false;
                    entries.push((String::new(), Value::Array(vec![other, v.to_value()])));
                }
            }
        }
        if all_strings {
            Value::Map(entries)
        } else {
            Value::Array(entries.into_iter().map(|(_, pair)| pair).collect())
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let mut out = std::collections::BTreeMap::new();
        match value {
            Value::Map(entries) => {
                for (k, v) in entries {
                    out.insert(K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?);
                }
            }
            Value::Array(items) => {
                for item in items {
                    let (k, v) = <(K, V)>::from_value(item)?;
                    out.insert(k, v);
                }
            }
            _ => return Err(__unexpected("a map", value)),
        }
        Ok(out)
    }
}

impl<const N: usize, T: Serialize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u8> = Vec::from_value(&vec![1u8, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn map_lookup_helpers() {
        let m = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(m.get("a").and_then(Value::as_u64), Some(1));
        assert!(m.get("b").is_none());
        assert!(__field(&m, "b").is_err());
    }
}
